#include "privacy/attack/link_stealing.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "la/stats.h"

namespace ppfr::privacy {

std::vector<double> PairDistances(const la::Matrix& probs,
                                  const std::vector<std::pair<int, int>>& pairs,
                                  DistanceKind kind) {
  std::vector<double> out;
  out.reserve(pairs.size());
  const size_t c = static_cast<size_t>(probs.cols());
  for (const auto& [u, v] : pairs) {
    out.push_back(Distance(kind, std::span<const double>(probs.row(u), c),
                           std::span<const double>(probs.row(v), c)));
  }
  return out;
}

namespace {

// 1-D 2-means clustering; returns the threshold separating the clusters.
double TwoMeansThreshold(std::vector<double> values) {
  PPFR_CHECK_GE(values.size(), 2u);
  auto [mn_it, mx_it] = std::minmax_element(values.begin(), values.end());
  double c0 = *mn_it, c1 = *mx_it;
  if (c0 == c1) return c0;
  for (int iter = 0; iter < 100; ++iter) {
    double sum0 = 0.0, sum1 = 0.0;
    int64_t n0 = 0, n1 = 0;
    const double mid = 0.5 * (c0 + c1);
    for (double v : values) {
      if (std::fabs(v - c0) <= std::fabs(v - c1)) {
        sum0 += v;
        ++n0;
      } else {
        sum1 += v;
        ++n1;
      }
    }
    const double new_c0 = n0 > 0 ? sum0 / n0 : c0;
    const double new_c1 = n1 > 0 ? sum1 / n1 : c1;
    if (new_c0 == c0 && new_c1 == c1) break;
    c0 = new_c0;
    c1 = new_c1;
    (void)mid;
  }
  return 0.5 * (c0 + c1);
}

}  // namespace

AttackResult LinkStealingAttack(const la::Matrix& probs, const PairSample& pairs) {
  PPFR_CHECK(!pairs.connected.empty());
  PPFR_CHECK(!pairs.unconnected.empty());
  AttackResult result;
  result.auc_per_distance.reserve(AllDistanceKinds().size());
  for (DistanceKind kind : AllDistanceKinds()) {
    const std::vector<double> d_con = PairDistances(probs, pairs.connected, kind);
    const std::vector<double> d_unc = PairDistances(probs, pairs.unconnected, kind);
    // Attack succeeds when connected pairs score a SMALLER distance, so the
    // AUC treats unconnected distances as the "positive" (larger) class.
    result.auc_per_distance.push_back(la::AucFromScores(d_unc, d_con));
  }
  result.mean_auc = la::Mean(result.auc_per_distance);

  // Unsupervised clustering attack on cosine distances.
  const std::vector<double> d_con =
      PairDistances(probs, pairs.connected, DistanceKind::kCosine);
  const std::vector<double> d_unc =
      PairDistances(probs, pairs.unconnected, DistanceKind::kCosine);
  std::vector<double> all = d_con;
  all.insert(all.end(), d_unc.begin(), d_unc.end());
  const double threshold = TwoMeansThreshold(all);

  int64_t tp = 0, fp = 0, fn = 0, tn = 0;
  for (double d : d_con) (d <= threshold ? tp : fn)++;
  for (double d : d_unc) (d <= threshold ? fp : tn)++;
  const double predicted_pos = static_cast<double>(tp + fp);
  const double actual_pos = static_cast<double>(tp + fn);
  result.cluster_precision = predicted_pos > 0 ? tp / predicted_pos : 0.0;
  result.cluster_recall = actual_pos > 0 ? tp / actual_pos : 0.0;
  const double pr_sum = result.cluster_precision + result.cluster_recall;
  result.cluster_f1 =
      pr_sum > 0 ? 2.0 * result.cluster_precision * result.cluster_recall / pr_sum : 0.0;
  result.cluster_accuracy =
      static_cast<double>(tp + tn) / static_cast<double>(tp + tn + fp + fn);
  return result;
}

}  // namespace ppfr::privacy

#include "privacy/risk_metric.h"

#include <cmath>

#include "la/stats.h"
#include "privacy/attack/link_stealing.h"

namespace ppfr::privacy {

double DeltaD(const la::Matrix& probs, const PairSample& pairs, DistanceKind kind) {
  const std::vector<double> d1 = PairDistances(probs, pairs.connected, kind);
  const std::vector<double> d0 = PairDistances(probs, pairs.unconnected, kind);
  return std::fabs(la::Mean(d0) - la::Mean(d1));
}

double NormalizedDeltaD(const la::Matrix& probs, const PairSample& pairs,
                        DistanceKind kind) {
  const std::vector<double> d1 = PairDistances(probs, pairs.connected, kind);
  const std::vector<double> d0 = PairDistances(probs, pairs.unconnected, kind);
  const double gap = std::fabs(la::Mean(d0) - la::Mean(d1));
  const double denom = la::Variance(d0) + la::Variance(d1) + 1e-9;
  return 2.0 * gap / denom;
}

namespace {

struct PairColumns {
  std::vector<int> first;
  std::vector<int> second;
};

PairColumns SplitPairs(const std::vector<std::pair<int, int>>& pairs) {
  PairColumns cols;
  cols.first.reserve(pairs.size());
  cols.second.reserve(pairs.size());
  for (const auto& [u, v] : pairs) {
    cols.first.push_back(u);
    cols.second.push_back(v);
  }
  return cols;
}

// Squared-euclidean distance column (m x 1) between prediction rows.
ag::Var PairSqDistances(ag::Var probs, const std::vector<std::pair<int, int>>& pairs) {
  const PairColumns cols = SplitPairs(pairs);
  ag::Var pu = ag::GatherRows(probs, cols.first);
  ag::Var pv = ag::GatherRows(probs, cols.second);
  return ag::RowSums(ag::Square(ag::Sub(pu, pv)));
}

// Population variance of a column vector as a 1x1 node.
ag::Var ColumnVariance(ag::Var column) {
  ag::Var mean = ag::MeanAll(column);
  ag::Var centered =
      ag::Sub(column, ag::ExpandScalar(mean, column.rows(), column.cols()));
  return ag::MeanAll(ag::Square(centered));
}

}  // namespace

ag::Var RiskSurrogate(ag::Tape& tape, ag::Var logits, const PairSample& pairs) {
  PPFR_CHECK(!pairs.connected.empty());
  PPFR_CHECK(!pairs.unconnected.empty());
  (void)tape;
  ag::Var probs = ag::SoftmaxRows(logits);
  ag::Var d1 = PairSqDistances(probs, pairs.connected);
  ag::Var d0 = PairSqDistances(probs, pairs.unconnected);
  ag::Var gap = ag::Abs(ag::Sub(ag::MeanAll(d0), ag::MeanAll(d1)));
  ag::Var denom = ag::AddScalar(ag::Add(ColumnVariance(d0), ColumnVariance(d1)), 1e-9);
  return ag::Div(ag::Scale(gap, 2.0), denom);
}

}  // namespace ppfr::privacy

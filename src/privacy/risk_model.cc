#include "privacy/risk_model.h"

#include <cmath>

#include "common/check.h"

namespace ppfr::privacy {
namespace {

// Row of the left-normalised one-hop mean aggregation D̃⁻¹(A+I) applied to
// `embeddings`, for node v, with the neighbour set optionally edited to
// include/exclude `other`.
std::vector<double> AggregatedRow(const graph::Graph& g, const la::Matrix& embeddings,
                                  int v, int other, bool include_other) {
  std::vector<double> row(embeddings.cols(), 0.0);
  double count = 1.0;
  for (int c = 0; c < embeddings.cols(); ++c) row[c] = embeddings(v, c);
  for (int u : g.Neighbors(v)) {
    if (u == other && !include_other) continue;
    for (int c = 0; c < embeddings.cols(); ++c) row[c] += embeddings(u, c);
    count += 1.0;
  }
  if (include_other && !g.HasEdge(v, other)) {
    for (int c = 0; c < embeddings.cols(); ++c) row[c] += embeddings(other, c);
    count += 1.0;
  }
  for (double& x : row) x /= count;
  return row;
}

double RowDistance(const std::vector<double>& a, const std::vector<double>& b) {
  double s = 0.0;
  for (size_t c = 0; c < a.size(); ++c) s += (a[c] - b[c]) * (a[c] - b[c]);
  return std::sqrt(s);
}

}  // namespace

EdgeSensitivity PredictEdgeSensitivity(const graph::Graph& g,
                                       const std::vector<int>& labels,
                                       const la::Matrix& class_means, int i, int j) {
  PPFR_CHECK_EQ(class_means.rows(), 2) << "the Eq. 20 model is two-class";
  PPFR_CHECK_EQ(labels[i], labels[j]) << "Eq. 20 covers intra-class pairs";

  auto class1_degree = [&](int v) {
    int d1 = 0;
    for (int u : g.Neighbors(v)) d1 += labels[u] == 1;
    return static_cast<double>(d1);
  };
  const double di = g.Degree(i);
  const double dj = g.Degree(j);

  EdgeSensitivity out;
  out.delta = std::fabs(class1_degree(i) / ((di + 1.0) * (di + 2.0)) -
                        class1_degree(j) / ((dj + 1.0) * (dj + 2.0)));
  double gap_sq = 0.0;
  for (int c = 0; c < class_means.cols(); ++c) {
    const double d = class_means(1, c) - class_means(0, c);
    gap_sq += d * d;
  }
  out.class_gap = std::sqrt(gap_sq);
  out.predicted_delta_d = out.class_gap * out.delta;
  return out;
}

double MeasureEdgeSensitivity(const graph::Graph& g, const la::Matrix& embeddings,
                              int i, int j) {
  // d0: rows aggregated WITHOUT the edge; d1: WITH the edge.
  const double d0 = RowDistance(AggregatedRow(g, embeddings, i, j, false),
                                AggregatedRow(g, embeddings, j, i, false));
  const double d1 = RowDistance(AggregatedRow(g, embeddings, i, j, true),
                                AggregatedRow(g, embeddings, j, i, true));
  return std::fabs(d0 - d1);
}

double ClassMeanGap(const la::Matrix& embeddings, const std::vector<int>& labels) {
  PPFR_CHECK_EQ(embeddings.rows(), static_cast<int>(labels.size()));
  std::vector<double> mean0(embeddings.cols(), 0.0), mean1(embeddings.cols(), 0.0);
  int64_t n0 = 0, n1 = 0;
  for (int v = 0; v < embeddings.rows(); ++v) {
    auto& mean = labels[v] == 0 ? mean0 : mean1;
    (labels[v] == 0 ? n0 : n1)++;
    for (int c = 0; c < embeddings.cols(); ++c) mean[c] += embeddings(v, c);
  }
  PPFR_CHECK_GT(n0, 0);
  PPFR_CHECK_GT(n1, 0);
  double gap_sq = 0.0;
  for (int c = 0; c < embeddings.cols(); ++c) {
    const double d = mean1[c] / n1 - mean0[c] / n0;
    gap_sq += d * d;
  }
  return std::sqrt(gap_sq);
}

}  // namespace ppfr::privacy

#ifndef PPFR_PRIVACY_RISK_MODEL_H_
#define PPFR_PRIVACY_RISK_MODEL_H_

#include <vector>

#include "graph/graph.h"
#include "la/matrix.h"

namespace ppfr::privacy {

// The paper's §VI-B2 analytical model of edge sensitivity under one-hop mean
// aggregation (left-normalised Â = D̃⁻¹(A+I)). For an intra-class node pair
// (i, j) of class 0, the expected prediction-distance change caused by the
// edge e_ij is (Eq. 20)
//     E[Δd(i,j)] = ‖μ1 − μ0‖ · |δ|,
//     δ = d₁ᵢ/((dᵢ+1)(dᵢ+2)) − d₁ⱼ/((dⱼ+1)(dⱼ+2)),
// where d₁ᵥ counts v's class-1 neighbours. The model motivates PP: shrinking
// the inter-class embedding gap ‖μ1 − μ0‖ shrinks every edge's footprint.
struct EdgeSensitivity {
  double delta = 0.0;             // |δ| (structure part)
  double class_gap = 0.0;         // ‖μ1 − μ0‖ (embedding part)
  double predicted_delta_d = 0.0; // product, Eq. 20
};

// Eq. 20 for a single intra-class pair, given the graph, binary labels
// (class of every node) and per-class embedding means.
EdgeSensitivity PredictEdgeSensitivity(const graph::Graph& g,
                                       const std::vector<int>& labels,
                                       const la::Matrix& class_means, int i, int j);

// Empirical counterpart: ‖ÂE‖ row distance between i and j WITH the edge
// (i,j) present minus WITHOUT it, under left-normalised mean aggregation of
// the embedding matrix. Used by tests to validate the model.
double MeasureEdgeSensitivity(const graph::Graph& g, const la::Matrix& embeddings,
                              int i, int j);

// ‖μ1 − μ0‖ from an embedding matrix and binary labels.
double ClassMeanGap(const la::Matrix& embeddings, const std::vector<int>& labels);

}  // namespace ppfr::privacy

#endif  // PPFR_PRIVACY_RISK_MODEL_H_

#include "privacy/distance.h"

#include <cmath>

#include "common/check.h"

namespace ppfr::privacy {
namespace {

double Cosine(std::span<const double> a, std::span<const double> b) {
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  const double denom = std::sqrt(na) * std::sqrt(nb);
  if (denom <= 0.0) return 1.0;
  return 1.0 - dot / denom;
}

double Correlation(std::span<const double> a, std::span<const double> b) {
  const double n = static_cast<double>(a.size());
  double ma = 0.0, mb = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    ma += a[i];
    mb += b[i];
  }
  ma /= n;
  mb /= n;
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double da = a[i] - ma;
    const double db = b[i] - mb;
    dot += da * db;
    na += da * da;
    nb += db * db;
  }
  const double denom = std::sqrt(na) * std::sqrt(nb);
  if (denom <= 0.0) return 1.0;
  return 1.0 - dot / denom;
}

}  // namespace

const std::vector<DistanceKind>& AllDistanceKinds() {
  static const std::vector<DistanceKind>* kinds = new std::vector<DistanceKind>{
      DistanceKind::kCosine,     DistanceKind::kEuclidean,
      DistanceKind::kCorrelation, DistanceKind::kChebyshev,
      DistanceKind::kBraycurtis, DistanceKind::kCanberra,
      DistanceKind::kCityblock,  DistanceKind::kSqeuclidean,
  };
  return *kinds;
}

std::string DistanceName(DistanceKind kind) {
  switch (kind) {
    case DistanceKind::kCosine:
      return "Cosine";
    case DistanceKind::kEuclidean:
      return "Euclidean";
    case DistanceKind::kCorrelation:
      return "Correlation";
    case DistanceKind::kChebyshev:
      return "Chebyshev";
    case DistanceKind::kBraycurtis:
      return "Braycurtis";
    case DistanceKind::kCanberra:
      return "Canberra";
    case DistanceKind::kCityblock:
      return "Cityblock";
    case DistanceKind::kSqeuclidean:
      return "Sqeuclidean";
  }
  return "?";
}

double Distance(DistanceKind kind, std::span<const double> a,
                std::span<const double> b) {
  PPFR_CHECK_EQ(a.size(), b.size());
  PPFR_CHECK(!a.empty());
  switch (kind) {
    case DistanceKind::kCosine:
      return Cosine(a, b);
    case DistanceKind::kCorrelation:
      return Correlation(a, b);
    case DistanceKind::kEuclidean: {
      double s = 0.0;
      for (size_t i = 0; i < a.size(); ++i) s += (a[i] - b[i]) * (a[i] - b[i]);
      return std::sqrt(s);
    }
    case DistanceKind::kSqeuclidean: {
      double s = 0.0;
      for (size_t i = 0; i < a.size(); ++i) s += (a[i] - b[i]) * (a[i] - b[i]);
      return s;
    }
    case DistanceKind::kChebyshev: {
      double m = 0.0;
      for (size_t i = 0; i < a.size(); ++i) m = std::max(m, std::fabs(a[i] - b[i]));
      return m;
    }
    case DistanceKind::kBraycurtis: {
      double num = 0.0, den = 0.0;
      for (size_t i = 0; i < a.size(); ++i) {
        num += std::fabs(a[i] - b[i]);
        den += std::fabs(a[i] + b[i]);
      }
      return den > 0.0 ? num / den : 0.0;
    }
    case DistanceKind::kCanberra: {
      double s = 0.0;
      for (size_t i = 0; i < a.size(); ++i) {
        const double den = std::fabs(a[i]) + std::fabs(b[i]);
        if (den > 0.0) s += std::fabs(a[i] - b[i]) / den;
      }
      return s;
    }
    case DistanceKind::kCityblock: {
      double s = 0.0;
      for (size_t i = 0; i < a.size(); ++i) s += std::fabs(a[i] - b[i]);
      return s;
    }
  }
  PPFR_CHECK(false) << "unknown distance kind";
  return 0.0;
}

}  // namespace ppfr::privacy

#ifndef PPFR_PRIVACY_RISK_METRIC_H_
#define PPFR_PRIVACY_RISK_METRIC_H_

#include "autograd/ops.h"
#include "la/matrix.h"
#include "privacy/attack/pair_sampler.h"
#include "privacy/distance.h"

namespace ppfr::privacy {

// Definition 2 of the paper: f_risk = ‖ E[d0] − E[d1] ‖, the gap between the
// mean prediction distance of unconnected (d0) and connected (d1) pairs.
// Larger means more distinguishable, i.e. higher edge-leakage risk.
double DeltaD(const la::Matrix& probs, const PairSample& pairs, DistanceKind kind);

// The paper's better-conditioned surrogate used inside influence functions
// (§VI-B1): f_risk(θ) = 2‖d̄0 − d̄1‖ / (var(d0) + var(d1)).
double NormalizedDeltaD(const la::Matrix& probs, const PairSample& pairs,
                        DistanceKind kind);

// Differentiable version of NormalizedDeltaD built on the tape, with
// squared-euclidean distances over softmax probabilities. `logits` is the
// model output (n x classes); returns a 1x1 node.
ag::Var RiskSurrogate(ag::Tape& tape, ag::Var logits, const PairSample& pairs);

}  // namespace ppfr::privacy

#endif  // PPFR_PRIVACY_RISK_METRIC_H_

#include "privacy/defense/heterophilic_perturbation.h"

#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace ppfr::privacy {

graph::Graph AddHeterophilicEdges(const graph::Graph& g,
                                  const std::vector<int>& predicted_labels,
                                  double gamma, uint64_t seed) {
  const int n = g.num_nodes();
  PPFR_CHECK_EQ(predicted_labels.size(), static_cast<size_t>(n));
  PPFR_CHECK_GE(gamma, 0.0);
  Rng rng(seed);

  std::vector<graph::Edge> edges = g.Edges();
  for (int i = 0; i < n; ++i) {
    const int budget = static_cast<int>(std::lround(gamma * g.Degree(i)));
    int added = 0;
    // Rejection sampling: random non-neighbour with a different predicted
    // label. Bounded attempts in case a node's predicted class dominates.
    int attempts = 0;
    const int max_attempts = 50 * (budget + 1);
    while (added < budget && attempts < max_attempts) {
      ++attempts;
      const int j = static_cast<int>(rng.UniformInt(n));
      if (j == i || g.HasEdge(i, j)) continue;
      if (predicted_labels[j] == predicted_labels[i]) continue;
      edges.push_back({i, j});
      ++added;
    }
  }
  return graph::Graph::FromEdges(n, edges);
}

}  // namespace ppfr::privacy

#ifndef PPFR_PRIVACY_DEFENSE_HETEROPHILIC_PERTURBATION_H_
#define PPFR_PRIVACY_DEFENSE_HETEROPHILIC_PERTURBATION_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace ppfr::privacy {

// The paper's privacy-aware perturbation (PP, §VI-B2): A' = A + ΔA, where ΔA
// connects every node i to γ·|N(i)| random non-neighbours whose *predicted*
// label differs (heterophilic noisy edges). Guided by the risk model (Eq. 20):
// shrinking the inter-class embedding gap ‖μ1 − μ0‖ lowers d̄0 and with it the
// attack's ability to separate connected from unconnected pairs.
graph::Graph AddHeterophilicEdges(const graph::Graph& g,
                                  const std::vector<int>& predicted_labels,
                                  double gamma, uint64_t seed);

}  // namespace ppfr::privacy

#endif  // PPFR_PRIVACY_DEFENSE_HETEROPHILIC_PERTURBATION_H_

#include "privacy/defense/lap_graph.h"

#include <algorithm>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace ppfr::privacy {

graph::Graph LapGraph(const graph::Graph& g, double epsilon, uint64_t seed) {
  PPFR_CHECK_GT(epsilon, 0.0);
  const int n = g.num_nodes();
  const int64_t num_pairs = static_cast<int64_t>(n) * (n - 1) / 2;
  const int64_t num_edges = g.num_edges();
  Rng rng(seed);

  // Noisy scores for every candidate cell. O(n²) work/memory — fine for the
  // graph sizes in this suite; LapGraph exists precisely because EdgeRand's
  // flip set becomes unmanageable on large dense ranges.
  struct Cell {
    double score;
    int u;
    int v;
  };
  std::vector<Cell> cells;
  cells.reserve(num_pairs);
  const double scale = 1.0 / epsilon;
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      const double base = g.HasEdge(u, v) ? 1.0 : 0.0;
      cells.push_back({base + rng.Laplace(scale), u, v});
    }
  }

  const int64_t keep = std::min<int64_t>(num_edges, num_pairs);
  std::nth_element(cells.begin(), cells.begin() + keep, cells.end(),
                   [](const Cell& a, const Cell& b) { return a.score > b.score; });
  std::vector<graph::Edge> edges;
  edges.reserve(keep);
  for (int64_t i = 0; i < keep; ++i) edges.push_back({cells[i].u, cells[i].v});
  return graph::Graph::FromEdges(n, edges);
}

}  // namespace ppfr::privacy

#ifndef PPFR_PRIVACY_DEFENSE_LAP_GRAPH_H_
#define PPFR_PRIVACY_DEFENSE_LAP_GRAPH_H_

#include <cstdint>

#include "graph/graph.h"

namespace ppfr::privacy {

// LapGraph ε-edge-DP mechanism (Wu et al., LinkTeller, S&P'22): adds
// Laplace(1/ε) noise to every upper-triangular adjacency cell, then keeps the
// top-|E| noisy cells as the perturbed edge set (|E| estimated privately in
// the original; here the true count is used, which only helps the baseline).
graph::Graph LapGraph(const graph::Graph& g, double epsilon, uint64_t seed);

}  // namespace ppfr::privacy

#endif  // PPFR_PRIVACY_DEFENSE_LAP_GRAPH_H_

#include "privacy/defense/edge_rand.h"

#include <cmath>
#include <unordered_set>

#include "common/check.h"
#include "common/rng.h"

namespace ppfr::privacy {

double EdgeRandFlipProbability(double epsilon) {
  PPFR_CHECK_GT(epsilon, 0.0);
  return 2.0 / (1.0 + std::exp(epsilon));
}

graph::Graph EdgeRand(const graph::Graph& g, double epsilon, uint64_t seed) {
  const int n = g.num_nodes();
  const double flip_prob = EdgeRandFlipProbability(epsilon);
  Rng rng(seed);

  // Geometric skipping over the n(n-1)/2 upper-triangular cells, so the cost
  // is proportional to the number of flips rather than to n².
  std::unordered_set<int64_t> flipped;
  const int64_t num_pairs = static_cast<int64_t>(n) * (n - 1) / 2;
  if (flip_prob > 0.0 && flip_prob < 1.0) {
    const double log1mp = std::log1p(-flip_prob);
    int64_t cursor = -1;
    while (true) {
      const double u = std::max(rng.Uniform(), 1e-300);
      cursor += 1 + static_cast<int64_t>(std::floor(std::log(u) / log1mp));
      if (cursor >= num_pairs) break;
      flipped.insert(cursor);
    }
  }

  // Pair index of the canonical cell (u, v), u < v: cells are laid out row by
  // row, row u holding (n - 1 - u) cells starting at offset(u).
  auto pair_index = [n](int u, int v) {
    const int64_t offset =
        static_cast<int64_t>(u) * n - static_cast<int64_t>(u) * (u + 1) / 2 - u - 1;
    return offset + v;
  };

  std::vector<graph::Edge> edges;
  edges.reserve(g.Edges().size() + flipped.size());
  // Existing edges survive unless flipped.
  for (const graph::Edge& e : g.Edges()) {
    if (flipped.count(pair_index(e.u, e.v)) == 0) edges.push_back(e);
  }
  // Flipped non-edges are added: unrank each flipped index back to (u, v).
  for (int64_t idx : flipped) {
    // Binary search the row u with row_start(u) <= idx < row_start(u+1),
    // where row u holds the (n - 1 - u) cells (u, u+1) .. (u, n-1).
    auto row_start = [n](int64_t u) {
      return u * static_cast<int64_t>(n) - u - u * (u - 1) / 2;
    };
    int64_t lo = 0, hi = n - 1;
    while (lo + 1 < hi) {
      const int64_t mid = (lo + hi) / 2;
      if (row_start(mid) <= idx) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    const int u = static_cast<int>(lo);
    const int v = static_cast<int>(idx - row_start(lo) + u + 1);
    if (!g.HasEdge(u, v)) edges.push_back({u, v});
  }
  return graph::Graph::FromEdges(n, edges);
}

}  // namespace ppfr::privacy

#ifndef PPFR_PRIVACY_DEFENSE_EDGE_RAND_H_
#define PPFR_PRIVACY_DEFENSE_EDGE_RAND_H_

#include <cstdint>

#include "graph/graph.h"

namespace ppfr::privacy {

// EdgeRand ε-edge-DP mechanism (Wu et al., LinkTeller, S&P'22): randomised
// response over the upper-triangular adjacency — every potential edge cell is
// flipped independently with probability s = 2 / (1 + e^ε). Smaller ε means
// more flips and stronger privacy but a noisier training graph.
graph::Graph EdgeRand(const graph::Graph& g, double epsilon, uint64_t seed);

// Flip probability s for a given ε (exposed for tests/benchmarks).
double EdgeRandFlipProbability(double epsilon);

}  // namespace ppfr::privacy

#endif  // PPFR_PRIVACY_DEFENSE_EDGE_RAND_H_

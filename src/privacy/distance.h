#ifndef PPFR_PRIVACY_DISTANCE_H_
#define PPFR_PRIVACY_DISTANCE_H_

#include <span>
#include <string>
#include <vector>

namespace ppfr::privacy {

// The eight prediction-distance metrics the link-stealing attack of He et
// al. (USENIX Security'21) evaluates, as used in §VII-A of the paper.
enum class DistanceKind {
  kCosine,
  kEuclidean,
  kCorrelation,
  kChebyshev,
  kBraycurtis,
  kCanberra,
  kCityblock,
  kSqeuclidean,
};

// All eight kinds, in presentation order.
const std::vector<DistanceKind>& AllDistanceKinds();

std::string DistanceName(DistanceKind kind);

// d(a, b) for two prediction vectors of equal length.
double Distance(DistanceKind kind, std::span<const double> a, std::span<const double> b);

}  // namespace ppfr::privacy

#endif  // PPFR_PRIVACY_DISTANCE_H_

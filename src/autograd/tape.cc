#include "autograd/tape.h"

#include <algorithm>

namespace ppfr::ag {
namespace {

// The calling thread's installed arena (see ArenaScope). A tape consults it
// only when it belongs to that tape, so scopes for different tapes coexist.
thread_local GradArena* t_active_arena = nullptr;

}  // namespace

ArenaScope::ArenaScope(GradArena* arena) : previous_(t_active_arena) {
  t_active_arena = arena;
}

ArenaScope::~ArenaScope() { t_active_arena = previous_; }

const la::Matrix& Var::value() const { return tape->Value(*this); }

double Var::scalar() const {
  const la::Matrix& v = value();
  PPFR_CHECK_EQ(v.rows(), 1);
  PPFR_CHECK_EQ(v.cols(), 1);
  return v(0, 0);
}

GradArena& Tape::ActiveArena() const {
  GradArena* arena = t_active_arena;
  if (arena != nullptr && arena->tape_ == this) return *arena;
  return own_arena_;
}

GradArena::NodeGrad& Tape::GradState(GradArena& arena, int id) const {
  if (static_cast<int>(arena.nodes_.size()) <= id) {
    arena.nodes_.resize(nodes_.size());
  }
  return arena.nodes_[id];
}

Var Tape::Leaf(Parameter* param) {
  PPFR_CHECK(param != nullptr);
  PPFR_CHECK(!value_pending_) << "NewValue not consumed before Leaf";
  if (replaying_) {
    PPFR_CHECK_LT(replay_cursor_, static_cast<int>(nodes_.size()))
        << "replay built more nodes than were recorded";
    Node& node = nodes_[replay_cursor_];
    PPFR_CHECK(node.param == param) << "replay structure mismatch at leaf "
                                    << param->name;
    node.value.CopyDataFrom(param->value);
    return Var{this, replay_cursor_++};
  }
  Node node;
  node.value = param->value;
  node.needs_grad = true;
  node.param = param;
  nodes_.push_back(std::move(node));
  return Var{this, static_cast<int>(nodes_.size()) - 1};
}

Var Tape::Constant(la::Matrix value) {
  PPFR_CHECK(!value_pending_) << "NewValue not consumed before Constant";
  if (replaying_) {
    PPFR_CHECK_LT(replay_cursor_, static_cast<int>(nodes_.size()))
        << "replay built more nodes than were recorded";
    Node& node = nodes_[replay_cursor_];
    PPFR_CHECK(node.param == nullptr && !node.needs_grad)
        << "replay structure mismatch: expected a constant";
    PPFR_CHECK(node.value.SameShape(value));
    node.value = std::move(value);
    return Var{this, replay_cursor_++};
  }
  Node node;
  node.value = std::move(value);
  node.needs_grad = false;
  nodes_.push_back(std::move(node));
  return Var{this, static_cast<int>(nodes_.size()) - 1};
}

Var Tape::StaticConstant(const la::Matrix& value) {
  if (replaying_) {
    PPFR_CHECK(!value_pending_);
    PPFR_CHECK_LT(replay_cursor_, static_cast<int>(nodes_.size()))
        << "replay built more nodes than were recorded";
    Node& node = nodes_[replay_cursor_];
    PPFR_CHECK(node.param == nullptr && !node.needs_grad)
        << "replay structure mismatch: expected a constant";
    PPFR_CHECK(node.value.SameShape(value));
    // Caller contract: the data is unchanged, so the recorded copy stands.
    return Var{this, replay_cursor_++};
  }
  return Constant(value);
}

Var Tape::ScalarConstant(double value) {
  la::Matrix m(1, 1);
  m(0, 0) = value;
  return Constant(std::move(m));
}

Var Tape::MakeNode(la::Matrix value, bool needs_grad,
                   std::function<void(Tape&)> backward,
                   const std::vector<Var>& parents) {
  value_pending_ = false;
  if (replaying_) {
    PPFR_CHECK_LT(replay_cursor_, static_cast<int>(nodes_.size()))
        << "replay built more nodes than were recorded";
    Node& node = nodes_[replay_cursor_];
    PPFR_CHECK(node.param == nullptr) << "replay structure mismatch: expected an op";
    PPFR_CHECK_EQ(node.needs_grad, needs_grad);
    PPFR_CHECK(node.value.SameShape(value));
    PPFR_CHECK_EQ(node.parents.size(), parents.size());
    for (size_t i = 0; i < parents.size(); ++i) {
      PPFR_CHECK(parents[i].tape == this);
      PPFR_CHECK_EQ(node.parents[i], parents[i].id);
    }
    node.value = std::move(value);
    // The closure is replaced, not reused: ops capture per-forward state
    // (saved activations, sampled operands), which must come from THIS pass.
    if (needs_grad) node.backward = std::move(backward);
    return Var{this, replay_cursor_++};
  }
  Node node;
  node.value = std::move(value);
  node.needs_grad = needs_grad;
  if (needs_grad) node.backward = std::move(backward);
  node.parents.reserve(parents.size());
  const int id = static_cast<int>(nodes_.size());
  for (Var p : parents) {
    PPFR_CHECK(p.tape == this) << "ops must stay on a single tape";
    PPFR_CHECK_GE(p.id, 0);
    PPFR_CHECK_LT(p.id, id);
    node.parents.push_back(p.id);
  }
  nodes_.push_back(std::move(node));
  return Var{this, id};
}

la::Matrix Tape::NewValue(int rows, int cols, bool zero_init) {
  if (!replaying_) return la::Matrix(rows, cols);
  PPFR_CHECK(!value_pending_) << "two NewValue calls without a node creation";
  PPFR_CHECK_LT(replay_cursor_, static_cast<int>(nodes_.size()))
      << "replay built more nodes than were recorded";
  Node& node = nodes_[replay_cursor_];
  PPFR_CHECK(node.param == nullptr);
  PPFR_CHECK_EQ(node.value.rows(), rows);
  PPFR_CHECK_EQ(node.value.cols(), cols);
  la::Matrix out = std::move(node.value);
  if (zero_init) out.Zero();
  value_pending_ = true;
  return out;
}

bool Tape::NeedsGrad(Var v) const {
  PPFR_CHECK(v.tape == this);
  return nodes_[v.id].needs_grad;
}

const la::Matrix& Tape::Value(Var v) const {
  PPFR_CHECK(v.tape == this);
  PPFR_CHECK_GE(v.id, 0);
  PPFR_CHECK_LT(v.id, static_cast<int>(nodes_.size()));
  return nodes_[v.id].value;
}

la::Matrix& Tape::GradRef(Var v) {
  PPFR_CHECK(v.tape == this);
  GradArena& arena = ActiveArena();
  GradArena::NodeGrad& g = GradState(arena, v.id);
  if (!g.allocated || !g.grad.SameShape(nodes_[v.id].value)) {
    const Node& node = nodes_[v.id];
    g.grad = la::Matrix(node.value.rows(), node.value.cols());
    g.allocated = true;
  }
  if (!g.dirty) {
    g.dirty = true;
    arena.dirty_.push_back(v.id);
  }
  g.rows_known = false;  // caller may write anywhere
  return g.grad;
}

la::Matrix& Tape::GradRefPartial(Var v, const std::vector<int>& rows) {
  PPFR_CHECK(v.tape == this);
  GradArena& arena = ActiveArena();
  GradArena::NodeGrad& g = GradState(arena, v.id);
  if (!g.allocated || !g.grad.SameShape(nodes_[v.id].value)) {
    const Node& node = nodes_[v.id];
    g.grad = la::Matrix(node.value.rows(), node.value.cols());
    g.allocated = true;
  }
  if (!g.dirty) {
    g.dirty = true;
    arena.dirty_.push_back(v.id);
    g.rows_known = true;
    g.rows.assign(rows.begin(), rows.end());
    // Supports usually arrive already sorted (CSR adjacency walks, presorted
    // seed lists) — skip the O(n log n) pass when a linear scan confirms it.
    if (!std::is_sorted(g.rows.begin(), g.rows.end())) {
      std::sort(g.rows.begin(), g.rows.end());
    }
    g.rows.erase(std::unique(g.rows.begin(), g.rows.end()), g.rows.end());
  } else if (g.rows_known) {
    // Union the new rows into the existing sorted support.
    std::vector<int> incoming(rows.begin(), rows.end());
    if (!std::is_sorted(incoming.begin(), incoming.end())) {
      std::sort(incoming.begin(), incoming.end());
    }
    incoming.erase(std::unique(incoming.begin(), incoming.end()), incoming.end());
    std::vector<int> merged;
    merged.reserve(g.rows.size() + incoming.size());
    std::set_union(g.rows.begin(), g.rows.end(), incoming.begin(), incoming.end(),
                   std::back_inserter(merged));
    g.rows = std::move(merged);
  }
  // If support is already unknown, stay unknown (a full zero is always safe).
  return g.grad;
}

const la::Matrix& Tape::GradView(Var v) const {
  PPFR_CHECK(v.tape == this);
  GradArena& arena = ActiveArena();
  GradArena::NodeGrad& g = GradState(arena, v.id);
  PPFR_CHECK(g.allocated);
  return g.grad;
}

const std::vector<int>* Tape::GradRowSupport(Var v) const {
  PPFR_CHECK(v.tape == this);
  GradArena& arena = ActiveArena();
  const GradArena::NodeGrad& g = GradState(arena, v.id);
  if (!g.dirty || !g.rows_known) return nullptr;
  return &g.rows;
}

void Tape::Backward(Var loss) {
  const la::Matrix& loss_value = Value(loss);
  PPFR_CHECK_EQ(loss_value.rows(), 1);
  PPFR_CHECK_EQ(loss_value.cols(), 1);
  la::Matrix seed(1, 1);
  seed(0, 0) = 1.0;
  BackwardWithSeed(loss, seed);
}

void Tape::BackwardWithSeed(Var output, const la::Matrix& seed) {
  PPFR_CHECK(output.tape == this);
  PPFR_CHECK(nodes_[output.id].needs_grad)
      << "output does not depend on any parameter";
  PPFR_CHECK(seed.SameShape(nodes_[output.id].value));
  GradRef(output).Axpy(1.0, seed);
  RunBackward(ActiveArena(), output.id);
}

void Tape::BackwardWithSparseSeed(Var output, const std::vector<int>& rows,
                                  const std::vector<int>& cols,
                                  const std::vector<double>& values) {
  PPFR_CHECK(output.tape == this);
  PPFR_CHECK(nodes_[output.id].needs_grad)
      << "output does not depend on any parameter";
  PPFR_CHECK_EQ(rows.size(), cols.size());
  PPFR_CHECK_EQ(rows.size(), values.size());
  la::Matrix& g = GradRefPartial(output, rows);
  for (size_t k = 0; k < rows.size(); ++k) {
    g(rows[k], cols[k]) += values[k];
  }
  RunBackward(ActiveArena(), output.id);
}

void Tape::RunBackward(GradArena& arena, int output_id) {
  if (replaying_) {
    PPFR_CHECK_EQ(replay_cursor_, static_cast<int>(nodes_.size()))
        << "replay rebuilt fewer nodes than were recorded";
    PPFR_CHECK(!value_pending_);
    replaying_ = false;
  }
  // Reachability: only ancestors of the output can receive gradient, so the
  // sweep skips everything else (per-seed loss tails hanging off a shared
  // forward pass, unrelated sub-expressions). Parents always have smaller
  // ids, so one descending pass settles the whole mask.
  if (static_cast<int>(arena.reach_stamp_.size()) < static_cast<int>(nodes_.size())) {
    arena.reach_stamp_.resize(nodes_.size(), 0);
  }
  const int epoch = ++arena.reach_epoch_;
  arena.reach_stamp_[output_id] = epoch;
  for (int id = output_id; id >= 0; --id) {
    if (arena.reach_stamp_[id] != epoch) continue;
    for (int p : nodes_[id].parents) arena.reach_stamp_[p] = epoch;
  }

  int visited = 0;
  for (int id = output_id; id >= 0; --id) {
    if (arena.reach_stamp_[id] != epoch) continue;
    Node& node = nodes_[id];
    if (!node.needs_grad) continue;
    const GradArena::NodeGrad& g = GradState(arena, id);
    if (!g.dirty) continue;  // no gradient reached this node
    ++visited;
    if (node.param != nullptr) {
      if (accumulate_param_grads_) node.param->grad.Axpy(1.0, g.grad);
    } else if (node.backward) {
      node.backward(*this);
    }
  }
  arena.last_backward_visited_ = visited;
}

void Tape::FlattenLeafGrads(const std::vector<Parameter*>& params,
                            std::vector<double>* out) const {
  GradArena& arena = ActiveArena();
  int64_t total = 0;
  for (const Parameter* p : params) total += p->size();
  out->assign(static_cast<size_t>(total), 0.0);
  int64_t offset = 0;
  for (const Parameter* p : params) {
    // Sum over EVERY leaf node of the parameter, matching RunBackward's
    // accumulate-per-leaf semantics (a tape may expose one parameter through
    // several leaves, e.g. tied weights).
    for (int id = 0; id < static_cast<int>(nodes_.size()); ++id) {
      if (nodes_[id].param != p) continue;
      if (id >= static_cast<int>(arena.nodes_.size())) continue;
      const GradArena::NodeGrad& g = arena.nodes_[id];
      if (!g.allocated || !g.dirty) continue;
      const double* src = g.grad.data();
      auto dst = out->begin() + offset;
      for (int64_t i = 0; i < g.grad.size(); ++i) dst[i] += src[i];
    }
    offset += p->size();
  }
}

void Tape::ZeroAllGrads() {
  GradArena& arena = ActiveArena();
  for (GradArena::NodeGrad& g : arena.nodes_) {
    if (g.allocated) g.grad.Zero();
    g.dirty = false;
    g.rows_known = false;
    g.rows.clear();
  }
  arena.dirty_.clear();
}

void Tape::ZeroDirtyNodeGrads() {
  GradArena& arena = ActiveArena();
  for (int id : arena.dirty_) {
    GradArena::NodeGrad& g = arena.nodes_[id];
    if (g.rows_known) {
      for (int r : g.rows) {
        double* row = g.grad.row(r);
        std::fill(row, row + g.grad.cols(), 0.0);
      }
    } else {
      g.grad.Zero();
    }
    g.dirty = false;
    g.rows_known = false;
    g.rows.clear();
  }
  arena.dirty_.clear();
}

void Tape::BeginReplay() {
  PPFR_CHECK(!replaying_) << "BeginReplay while a replay is in progress";
  PPFR_CHECK(!nodes_.empty()) << "nothing recorded to replay";
  PPFR_CHECK(!value_pending_);
  ZeroDirtyNodeGrads();
  replaying_ = true;
  replay_cursor_ = 0;
}

void Tape::EndReplay() {
  PPFR_CHECK(replaying_) << "EndReplay without a replay in progress";
  PPFR_CHECK_EQ(replay_cursor_, static_cast<int>(nodes_.size()))
      << "replay rebuilt fewer nodes than were recorded";
  PPFR_CHECK(!value_pending_);
  replaying_ = false;
}

}  // namespace ppfr::ag

#include "autograd/tape.h"

namespace ppfr::ag {

const la::Matrix& Var::value() const { return tape->Value(*this); }

double Var::scalar() const {
  const la::Matrix& v = value();
  PPFR_CHECK_EQ(v.rows(), 1);
  PPFR_CHECK_EQ(v.cols(), 1);
  return v(0, 0);
}

Var Tape::Leaf(Parameter* param) {
  PPFR_CHECK(param != nullptr);
  Node node;
  node.value = param->value;
  node.needs_grad = true;
  node.param = param;
  nodes_.push_back(std::move(node));
  return Var{this, static_cast<int>(nodes_.size()) - 1};
}

Var Tape::Constant(la::Matrix value) {
  Node node;
  node.value = std::move(value);
  node.needs_grad = false;
  nodes_.push_back(std::move(node));
  return Var{this, static_cast<int>(nodes_.size()) - 1};
}

Var Tape::ScalarConstant(double value) {
  la::Matrix m(1, 1);
  m(0, 0) = value;
  return Constant(std::move(m));
}

Var Tape::MakeNode(la::Matrix value, bool needs_grad,
                   std::function<void(Tape&)> backward) {
  Node node;
  node.value = std::move(value);
  node.needs_grad = needs_grad;
  if (needs_grad) node.backward = std::move(backward);
  nodes_.push_back(std::move(node));
  return Var{this, static_cast<int>(nodes_.size()) - 1};
}

bool Tape::NeedsGrad(Var v) const {
  PPFR_CHECK(v.tape == this);
  return nodes_[v.id].needs_grad;
}

const la::Matrix& Tape::Value(Var v) const {
  PPFR_CHECK(v.tape == this);
  PPFR_CHECK_GE(v.id, 0);
  PPFR_CHECK_LT(v.id, static_cast<int>(nodes_.size()));
  return nodes_[v.id].value;
}

la::Matrix& Tape::GradRef(Var v) {
  PPFR_CHECK(v.tape == this);
  Node& node = nodes_[v.id];
  if (!node.grad_allocated) {
    node.grad = la::Matrix(node.value.rows(), node.value.cols());
    node.grad_allocated = true;
  }
  return node.grad;
}

void Tape::Backward(Var loss) {
  const la::Matrix& loss_value = Value(loss);
  PPFR_CHECK_EQ(loss_value.rows(), 1);
  PPFR_CHECK_EQ(loss_value.cols(), 1);
  la::Matrix seed(1, 1);
  seed(0, 0) = 1.0;
  BackwardWithSeed(loss, seed);
}

void Tape::BackwardWithSeed(Var output, const la::Matrix& seed) {
  PPFR_CHECK(output.tape == this);
  PPFR_CHECK(nodes_[output.id].needs_grad)
      << "output does not depend on any parameter";
  PPFR_CHECK(seed.SameShape(nodes_[output.id].value));
  GradRef(output).Axpy(1.0, seed);

  for (int id = output.id; id >= 0; --id) {
    Node& node = nodes_[id];
    if (!node.needs_grad || !node.grad_allocated) continue;
    if (node.param != nullptr) {
      node.param->grad.Axpy(1.0, node.grad);
    } else if (node.backward) {
      node.backward(*this);
    }
  }
}

void Tape::ZeroAllGrads() {
  for (Node& node : nodes_) {
    if (node.grad_allocated) node.grad.Zero();
  }
}

}  // namespace ppfr::ag

#ifndef PPFR_AUTOGRAD_TAPE_H_
#define PPFR_AUTOGRAD_TAPE_H_

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "la/matrix.h"

namespace ppfr::ag {

class Tape;

// Lightweight handle to a node on a Tape. Vars are cheap to copy; the
// referenced value lives for the lifetime of the tape.
struct Var {
  Tape* tape = nullptr;
  int id = -1;

  bool valid() const { return tape != nullptr && id >= 0; }
  const la::Matrix& value() const;
  int rows() const { return value().rows(); }
  int cols() const { return value().cols(); }
  // Value of a 1x1 node.
  double scalar() const;
};

// A trainable tensor. Parameters live outside any tape (they persist across
// forward passes); Tape::Leaf temporarily exposes them on a tape, and
// Tape::Backward accumulates into `grad`.
struct Parameter {
  std::string name;
  la::Matrix value;
  la::Matrix grad;

  Parameter(std::string param_name, la::Matrix initial)
      : name(std::move(param_name)),
        value(std::move(initial)),
        grad(value.rows(), value.cols()) {}

  void ZeroGrad() { grad.Zero(); }
  int64_t size() const { return value.size(); }
};

// Per-consumer gradient storage for one tape: node gradient buffers, their
// dirty / row-support bookkeeping, and the reachability scratch of a backward
// pass. A tape always owns a default arena and uses it transparently;
// influence::TapePool installs a private arena per worker thread (via
// ArenaScope) so concurrent seeded backward passes over ONE immutable
// forward tape never share mutable state.
class GradArena {
 public:
  explicit GradArena(const Tape* tape) : tape_(tape) {}

  GradArena(const GradArena&) = delete;
  GradArena& operator=(const GradArena&) = delete;

 private:
  friend class Tape;

  struct NodeGrad {
    la::Matrix grad;  // lazily sized
    bool allocated = false;
    bool dirty = false;
    bool rows_known = false;  // meaningful only while dirty
    std::vector<int> rows;    // sorted nonzero-row support
  };

  const Tape* tape_;
  std::vector<NodeGrad> nodes_;
  std::vector<int> dirty_;
  std::vector<int> reach_stamp_;  // per-node visit epoch for reachability
  int reach_epoch_ = 0;
  int last_backward_visited_ = 0;
};

// Installs `arena` as the calling thread's gradient arena for its tape while
// in scope. Nesting restores the previous arena on destruction.
class ArenaScope {
 public:
  explicit ArenaScope(GradArena* arena);
  ~ArenaScope();

  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

 private:
  GradArena* previous_;
};

// Reverse-mode automatic differentiation tape. Usage:
//
//   Tape tape;
//   Var x = tape.Leaf(&weight);
//   Var loss = MeanAll(Square(MatMul(x, ...)));
//   tape.Backward(loss);           // accumulates into weight.grad
//
// A tape represents one forward pass. For a loss whose graph STRUCTURE is
// static across evaluations (every training epoch, every CG gradient call),
// the tape doubles as a reusable arena: BeginReplay() rewinds a cursor and
// the next build of the same expression refills the recorded node slots in
// place — value/grad buffers and the node vector are recycled instead of
// reallocated, and ops that request their output via NewValue() run the
// whole refill without touching the allocator.
//
// Seeded backward passes (the per-node influence machinery) get three
// further mechanisms:
//   * reachability pruning — BackwardWithSeed only visits ancestors of the
//     seeded output, so per-node losses hanging off one shared forward pass
//     don't sweep each other's nodes;
//   * gradient row support — ops that know which rows of a parent gradient
//     they wrote declare them via GradRefPartial, and ZeroDirtyNodeGrads()
//     clears exactly those rows, keeping the cost of "reset for the next
//     seed" proportional to the seed's receptive field, not the graph size;
//   * gradient arenas — all backward-pass mutable state lives in a GradArena
//     (the tape's own by default), so N worker threads can back-propagate N
//     different seeds through one shared, immutable forward tape by
//     installing private arenas (see GradArena / influence::TapePool).
class Tape {
 public:
  Tape() = default;
  Tape(const Tape&) = delete;
  Tape& operator=(const Tape&) = delete;

  // Exposes a parameter as a differentiable leaf.
  Var Leaf(Parameter* param);

  // A constant (no gradient flows into it).
  Var Constant(la::Matrix value);

  // A constant whose referenced data the caller guarantees is IDENTICAL on
  // every rebuild of this tape (graph features, fixed operators). Recording
  // copies it once; a replay only validates the shape and keeps the recorded
  // buffer, so large immutable inputs are never recopied per epoch/solve.
  Var StaticConstant(const la::Matrix& value);

  // Scalar constant convenience (1x1).
  Var ScalarConstant(double value);

  // Creates an op node. `backward` receives this tape and must route
  // d(output)/d(parents) contributions into parent grads via GradRef() /
  // GradRefPartial(). Pass `needs_grad` as the OR over the parents'
  // needs_grad, and `parents` as every Var the op reads — BackwardWithSeed's
  // reachability pruning walks these edges, so an omitted parent would
  // silently drop gradients.
  Var MakeNode(la::Matrix value, bool needs_grad, std::function<void(Tape&)> backward,
               const std::vector<Var>& parents);

  // Output-buffer hand-off for ops: in record mode this is just a fresh
  // (rows x cols) matrix; in replay mode it recycles the buffer of the node
  // slot the subsequent MakeNode/Constant call will refill. Pass
  // zero_init=false when the op overwrites every element. Each NewValue must
  // be followed by exactly one node creation before the next NewValue.
  la::Matrix NewValue(int rows, int cols, bool zero_init = true);

  bool NeedsGrad(Var v) const;
  const la::Matrix& Value(Var v) const;

  // Mutable gradient buffer of a node (allocated on first use). Marks the
  // node dirty with UNKNOWN row support — the whole buffer is zeroed on the
  // next ZeroDirtyNodeGrads().
  la::Matrix& GradRef(Var v);

  // Like GradRef, but declares that the caller only writes the listed rows.
  // Multiple calls union their supports; mixing with plain GradRef degrades
  // to unknown support (full zero on reset), never to a wrong answer.
  la::Matrix& GradRefPartial(Var v, const std::vector<int>& rows);

  // Read-only view of an already-allocated gradient (backward lambdas read
  // their own output grad through this so the bookkeeping is untouched).
  const la::Matrix& GradView(Var v) const;

  // Sorted nonzero-row support of v's gradient, or nullptr when the support
  // is unknown (dense) or the gradient is untouched.
  const std::vector<int>* GradRowSupport(Var v) const;

  // Runs reverse accumulation from a 1x1 loss node; parameter gradients are
  // ADDED to Parameter::grad (call ZeroGrad on params between steps).
  void Backward(Var loss);

  // Seeds `output`'s gradient with an arbitrary matrix and runs reverse
  // accumulation from there, visiting only nodes reachable from `output`.
  // Together with ZeroDirtyNodeGrads this lets one forward pass serve many
  // backward passes (per-training-node loss gradients in the influence
  // machinery).
  void BackwardWithSeed(Var output, const la::Matrix& seed);

  // Sparse-seed variant: seeds grad(rows[k], cols[k]) += values[k] on
  // `output` (declaring the row support) and back-propagates. This is how a
  // single-node NLL loss is driven without materialising a loss node: the
  // tape stays structurally untouched, so concurrent workers can seed the
  // same output node under different arenas.
  void BackwardWithSparseSeed(Var output, const std::vector<int>& rows,
                              const std::vector<int>& cols,
                              const std::vector<double>& values);

  // When disabled, leaf gradients stay in the tape-local node buffers and
  // Parameter::grad is never written — the thread-safety contract that lets
  // influence::TapePool run concurrent backward passes over lane-local tapes
  // sharing one parameter set. Read them back via FlattenLeafGrads.
  void set_accumulate_param_grads(bool enabled) { accumulate_param_grads_ = enabled; }

  // Concatenates the leaf gradients in `params` order into `out` (resized to
  // the total parameter size; zeros for parameters without a leaf or whose
  // leaf was untouched by the last backward pass).
  void FlattenLeafGrads(const std::vector<Parameter*>& params,
                        std::vector<double>* out) const;

  // Clears all node gradients so the tape can be back-propagated again.
  void ZeroAllGrads();

  // Clears only the gradients touched since the previous reset — and within
  // each, only the declared row support when one is known. O(receptive
  // field) instead of O(tape).
  void ZeroDirtyNodeGrads();

  // ---- Reuse arena ----

  // Rewinds the tape so the next build of the SAME expression structure
  // refills the recorded slots in place. Gradients left over from the
  // previous pass are cleared. Backward/BackwardWithSeed verify that the
  // replay consumed every recorded node and switch back to record mode.
  void BeginReplay();
  // Closes a completed replay without running a backward pass — for callers
  // that replay a forward purely to refresh values (TapePool::Rewarm) and
  // will consume the tape from other threads afterwards. CHECKs that the
  // replay consumed every recorded node.
  void EndReplay();
  bool replaying() const { return replaying_; }

  // Logical node count (the replay cursor while replaying).
  int num_nodes() const {
    return replaying_ ? replay_cursor_ : static_cast<int>(nodes_.size());
  }

  // Nodes visited by the most recent (pruned) backward pass in this
  // thread's arena — observability for tests and the influence-engine bench.
  int last_backward_visited() const { return ActiveArena().last_backward_visited_; }

 private:
  struct Node {
    la::Matrix value;
    bool needs_grad = false;
    std::function<void(Tape&)> backward;  // null for leaves/constants
    Parameter* param = nullptr;
    std::vector<int> parents;
  };

  // The calling thread's arena for this tape (the installed ArenaScope arena
  // when it belongs to this tape, the built-in default otherwise), with its
  // per-node state lazily sized.
  GradArena& ActiveArena() const;
  GradArena::NodeGrad& GradState(GradArena& arena, int id) const;
  void RunBackward(GradArena& arena, int output_id);

  std::vector<Node> nodes_;
  mutable GradArena own_arena_{this};

  bool accumulate_param_grads_ = true;

  bool replaying_ = false;
  int replay_cursor_ = 0;
  bool value_pending_ = false;  // a NewValue awaits its MakeNode
};

}  // namespace ppfr::ag

#endif  // PPFR_AUTOGRAD_TAPE_H_

#ifndef PPFR_AUTOGRAD_TAPE_H_
#define PPFR_AUTOGRAD_TAPE_H_

#include <functional>
#include <string>
#include <vector>

#include "la/matrix.h"

namespace ppfr::ag {

class Tape;

// Lightweight handle to a node on a Tape. Vars are cheap to copy; the
// referenced value lives for the lifetime of the tape.
struct Var {
  Tape* tape = nullptr;
  int id = -1;

  bool valid() const { return tape != nullptr && id >= 0; }
  const la::Matrix& value() const;
  int rows() const { return value().rows(); }
  int cols() const { return value().cols(); }
  // Value of a 1x1 node.
  double scalar() const;
};

// A trainable tensor. Parameters live outside any tape (they persist across
// forward passes); Tape::Leaf temporarily exposes them on a tape, and
// Tape::Backward accumulates into `grad`.
struct Parameter {
  std::string name;
  la::Matrix value;
  la::Matrix grad;

  Parameter(std::string param_name, la::Matrix initial)
      : name(std::move(param_name)),
        value(std::move(initial)),
        grad(value.rows(), value.cols()) {}

  void ZeroGrad() { grad.Zero(); }
  int64_t size() const { return value.size(); }
};

// Reverse-mode automatic differentiation tape. Usage:
//
//   Tape tape;
//   Var x = tape.Leaf(&weight);
//   Var loss = MeanAll(Square(MatMul(x, ...)));
//   tape.Backward(loss);           // accumulates into weight.grad
//
// A tape represents one forward pass; build a fresh tape per training step.
class Tape {
 public:
  Tape() = default;
  Tape(const Tape&) = delete;
  Tape& operator=(const Tape&) = delete;

  // Exposes a parameter as a differentiable leaf.
  Var Leaf(Parameter* param);

  // A constant (no gradient flows into it).
  Var Constant(la::Matrix value);

  // Scalar constant convenience (1x1).
  Var ScalarConstant(double value);

  // Creates an op node. `backward` receives this tape and must route
  // d(output)/d(parents) contributions into parent grads via GradRef().
  // Pass `needs_grad` as the OR over the parents' needs_grad.
  Var MakeNode(la::Matrix value, bool needs_grad, std::function<void(Tape&)> backward);

  bool NeedsGrad(Var v) const;
  const la::Matrix& Value(Var v) const;

  // Mutable gradient buffer of a node (allocated on first use).
  la::Matrix& GradRef(Var v);

  // Runs reverse accumulation from a 1x1 loss node; parameter gradients are
  // ADDED to Parameter::grad (call ZeroGrad on params between steps).
  void Backward(Var loss);

  // Seeds `output`'s gradient with an arbitrary matrix and runs reverse
  // accumulation from there. Together with ZeroAllGrads this lets one forward
  // pass serve many backward passes (per-training-node loss gradients in the
  // influence machinery).
  void BackwardWithSeed(Var output, const la::Matrix& seed);

  // Clears all node gradients so the tape can be back-propagated again.
  void ZeroAllGrads();

  int num_nodes() const { return static_cast<int>(nodes_.size()); }

 private:
  struct Node {
    la::Matrix value;
    la::Matrix grad;  // lazily sized
    bool needs_grad = false;
    bool grad_allocated = false;
    std::function<void(Tape&)> backward;  // null for leaves/constants
    Parameter* param = nullptr;
  };

  std::vector<Node> nodes_;
};

}  // namespace ppfr::ag

#endif  // PPFR_AUTOGRAD_TAPE_H_

#include "autograd/ops.h"

#include <algorithm>
#include <cmath>

#include "la/backend.h"

namespace ppfr::ag {
namespace {

// Grain for backend-routed elementwise loops: below this many flat elements
// (or the row-count equivalent) threading doesn't pay, matching the cutoffs
// inside the parallel backend's own kernels.
constexpr int64_t kApplyGrain = 32 * 1024;

int64_t RowGrain(int cols) { return std::max<int64_t>(1, kApplyGrain / std::max(cols, 1)); }

// Creates the output node; `backward(tape, out_grad)` routes gradients to
// parents. Reduces the per-op boilerplate of discovering the output id. The
// output gradient is read through GradView so the node's own dirty/row
// bookkeeping is untouched; ops that need the row support query it with
// tape.GradRowSupport on their own Var.
template <typename BackwardFn>
Var MakeOp(Tape* tape, la::Matrix value, bool needs_grad, const std::vector<Var>& parents,
           BackwardFn backward) {
  const int out_id = tape->num_nodes();
  return tape->MakeNode(
      std::move(value), needs_grad,
      [out_id, backward](Tape& tp) {
        const la::Matrix& g = tp.GradView(Var{&tp, out_id});
        backward(tp, g);
      },
      parents);
}

bool AnyNeedsGrad(std::initializer_list<Var> vars) {
  for (Var v : vars) {
    if (v.tape->NeedsGrad(v)) return true;
  }
  return false;
}

Tape* CommonTape(std::initializer_list<Var> vars) {
  Tape* tape = nullptr;
  for (Var v : vars) {
    PPFR_CHECK(v.valid());
    if (tape == nullptr) tape = v.tape;
    PPFR_CHECK(v.tape == tape) << "ops must stay on a single tape";
  }
  return tape;
}

// dst.row(r) += scale * g.row(r) for r in rows.
void AxpyRows(la::Matrix* dst, const la::Matrix& g, const std::vector<int>& rows,
              double scale) {
  for (int r : rows) {
    double* d = dst->row(r);
    const double* s = g.row(r);
    for (int c = 0; c < g.cols(); ++c) d[c] += scale * s[c];
  }
}

// Elementwise unary op helper: out = f(a), da += g * f'(a). The forward loop
// is fanned out through the backend; the backward stays on the gradient's
// nonzero-row support when one is known (seeded influence passes), otherwise
// it sweeps the flat buffer, skipping exact-zero gradient entries — both
// paths add the same values, because a skipped entry only ever contributes
// an exact ±0 product.
template <typename F, typename DF>
Var UnaryElementwise(Var a, F f, DF df) {
  Tape* tape = CommonTape({a});
  const la::Matrix& av = a.value();
  la::Matrix out = tape->NewValue(av.rows(), av.cols(), /*zero_init=*/false);
  {
    const double* in = av.data();
    double* o = out.data();
    la::ActiveBackend().Apply(av.size(), kApplyGrain, [&](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) o[i] = f(in[i]);
    });
  }
  const bool needs = tape->NeedsGrad(a);
  const int out_id = tape->num_nodes();
  return MakeOp(tape, std::move(out), needs, {a},
                [a, df, out_id](Tape& tp, const la::Matrix& g) {
                  if (!tp.NeedsGrad(a)) return;
                  const la::Matrix& av = tp.Value(a);
                  const std::vector<int>* supp = tp.GradRowSupport(Var{&tp, out_id});
                  if (supp != nullptr) {
                    la::Matrix& da = tp.GradRefPartial(a, *supp);
                    for (int r : *supp) {
                      const double* gr = g.row(r);
                      const double* ar = av.row(r);
                      double* dr = da.row(r);
                      for (int c = 0; c < g.cols(); ++c) {
                        if (gr[c] == 0.0) continue;
                        dr[c] += gr[c] * df(ar[c]);
                      }
                    }
                    return;
                  }
                  la::Matrix& da = tp.GradRef(a);
                  const double* gd = g.data();
                  const double* ad = av.data();
                  double* dd = da.data();
                  la::ActiveBackend().Apply(
                      av.size(), kApplyGrain, [&](int64_t lo, int64_t hi) {
                        for (int64_t i = lo; i < hi; ++i) {
                          if (gd[i] == 0.0) continue;
                          dd[i] += gd[i] * df(ad[i]);
                        }
                      });
                });
}

}  // namespace

std::shared_ptr<const SparseOperand> MakeSparseOperand(la::CsrMatrix m, bool symmetric) {
  auto op = std::make_shared<SparseOperand>();
  op->symmetric = symmetric;
  op->mat = std::move(m);
  if (!symmetric) op->mat_t = op->mat.Transposed();
  return op;
}

Var MatMul(Var a, Var b) {
  Tape* tape = CommonTape({a, b});
  const la::Matrix& av = a.value();
  const la::Matrix& bv = b.value();
  PPFR_CHECK_EQ(av.cols(), bv.rows());
  la::Matrix out = tape->NewValue(av.rows(), bv.cols(), /*zero_init=*/false);
  la::ActiveBackend().Gemm(av, bv, &out);
  const bool needs = AnyNeedsGrad({a, b});
  const int out_id = tape->num_nodes();
  return MakeOp(
      tape, std::move(out), needs, {a, b},
      [a, b, out_id](Tape& tp, const la::Matrix& g) {
        const std::vector<int>* supp = tp.GradRowSupport(Var{&tp, out_id});
        if (tp.NeedsGrad(a)) {
          if (supp != nullptr) {
            // Rows of da mirror the gradient's row support exactly.
            la::GemmTransBAccumRows(g, tp.Value(b), &tp.GradRefPartial(a, *supp),
                                    *supp);
          } else {
            tp.GradRef(a).Axpy(1.0, la::MatMulTransB(g, tp.Value(b)));
          }
        }
        if (tp.NeedsGrad(b)) {
          if (supp != nullptr) {
            // db = aᵀ g is dense but only support rows contribute.
            la::GemmTransAAccumRows(tp.Value(a), g, &tp.GradRef(b), *supp);
          } else {
            tp.GradRef(b).Axpy(1.0, la::MatMulTransA(tp.Value(a), g));
          }
        }
      });
}

Var MatMulLanes(Var a, Var b, int lanes) {
  if (lanes == 1) return MatMul(a, b);
  Tape* tape = CommonTape({a, b});
  const la::Matrix& av = a.value();
  const la::Matrix& bv = b.value();
  PPFR_CHECK_GE(lanes, 1);
  PPFR_CHECK_EQ(bv.cols() % lanes, 0);
  const bool a_shared = av.cols() == bv.rows();
  PPFR_CHECK(a_shared || av.cols() == bv.rows() * lanes)
      << "MatMulLanes: a is " << av.rows() << "x" << av.cols()
      << ", expected shared k=" << bv.rows() << " or wide k*L=" << bv.rows() * lanes;
  // A lane-shared left operand must be a constant (features, masks): its
  // gradient would reduce over lanes, which the fused replay never needs and
  // whose accumulation order would be a fresh bitwise contract to maintain.
  PPFR_CHECK(!(a_shared && tape->NeedsGrad(a)))
      << "MatMulLanes: lane-shared `a` must not require grad";
  la::Matrix out = tape->NewValue(av.rows(), bv.cols(), /*zero_init=*/false);
  la::ActiveBackend().GemmLanes(av, bv, &out, lanes);
  const bool needs = AnyNeedsGrad({a, b});
  const int out_id = tape->num_nodes();
  return MakeOp(
      tape, std::move(out), needs, {a, b},
      [a, b, lanes, a_shared, out_id](Tape& tp, const la::Matrix& g) {
        const std::vector<int>* supp = tp.GradRowSupport(Var{&tp, out_id});
        if (tp.NeedsGrad(a)) {
          // a is lane-wide here (the shared case is CHECKed grad-free).
          if (supp != nullptr) {
            la::GemmLanesTransBAccumRows(g, tp.Value(b), &tp.GradRefPartial(a, *supp),
                                         *supp, lanes);
          } else {
            tp.GradRef(a).Axpy(1.0, la::MatMulLanesTransB(g, tp.Value(b), lanes));
          }
        }
        if (tp.NeedsGrad(b)) {
          if (supp != nullptr) {
            la::GemmLanesTransAAccumRows(tp.Value(a), g, &tp.GradRef(b), *supp, lanes);
          } else {
            tp.GradRef(b).Axpy(
                1.0, la::MatMulLanesTransA(tp.Value(a), g, lanes, a_shared));
          }
        }
      });
}

Var SpMM(const std::shared_ptr<const SparseOperand>& sp, Var x) {
  Tape* tape = CommonTape({x});
  const la::Matrix& xv = x.value();
  la::Matrix out = tape->NewValue(sp->mat.rows(), xv.cols(), /*zero_init=*/true);
  sp->mat.MultiplyAccum(xv, 1.0, &out);
  const bool needs = tape->NeedsGrad(x);
  const int out_id = tape->num_nodes();
  return MakeOp(
      tape, std::move(out), needs, {x},
      [sp, x, out_id](Tape& tp, const la::Matrix& g) {
        if (!tp.NeedsGrad(x)) return;
        const la::CsrMatrix& at = sp->symmetric ? sp->mat : sp->mat_t;
        const std::vector<int>* supp = tp.GradRowSupport(Var{&tp, out_id});
        if (supp != nullptr) {
          // dx row r is touched iff at(r, c) != 0 for some supported c; in
          // both the symmetric and the explicit-transpose case that is
          // exactly "r appears in row c of sp->mat", so the affected rows
          // are the union of the support rows' neighbour lists.
          // (thread_local scratch: this runs once per seed per SpMM inside
          // the pooled per-node loop, which must stay allocation-free.)
          thread_local std::vector<int> targets;
          targets.clear();
          const std::vector<int64_t>& row_ptr = sp->mat.row_ptr();
          const std::vector<int>& col_idx = sp->mat.col_idx();
          for (int c : *supp) {
            for (int64_t k = row_ptr[c]; k < row_ptr[c + 1]; ++k) {
              targets.push_back(col_idx[k]);
            }
          }
          std::sort(targets.begin(), targets.end());
          targets.erase(std::unique(targets.begin(), targets.end()), targets.end());
          // Mark the supported g rows so the kernel never streams the
          // known-zero rows between them through the cache (thread-local
          // scratch: workers under different arenas get their own).
          thread_local std::vector<uint8_t> g_row_mask;
          if (static_cast<int>(g_row_mask.size()) < g.rows()) {
            g_row_mask.assign(static_cast<size_t>(g.rows()), 0);
          }
          for (int c : *supp) g_row_mask[static_cast<size_t>(c)] = 1;
          at.MultiplyAccumRows(g, 1.0, &tp.GradRefPartial(x, targets), targets,
                               g_row_mask);
          for (int c : *supp) g_row_mask[static_cast<size_t>(c)] = 0;
        } else {
          at.MultiplyAccum(g, 1.0, &tp.GradRef(x));
        }
      });
}

namespace {

// Shared body for Add/Sub: out = a + sign*b, with support-aware backward.
Var AddLike(Var a, Var b, double sign) {
  Tape* tape = CommonTape({a, b});
  const la::Matrix& av = a.value();
  const la::Matrix& bv = b.value();
  PPFR_CHECK(av.SameShape(bv));
  la::Matrix out = tape->NewValue(av.rows(), av.cols(), /*zero_init=*/false);
  {
    const double* pa = av.data();
    const double* pb = bv.data();
    double* po = out.data();
    la::ActiveBackend().Apply(av.size(), kApplyGrain, [&](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) po[i] = pa[i] + sign * pb[i];
    });
  }
  const bool needs = AnyNeedsGrad({a, b});
  const int out_id = tape->num_nodes();
  return MakeOp(tape, std::move(out), needs, {a, b},
                [a, b, sign, out_id](Tape& tp, const la::Matrix& g) {
                  const std::vector<int>* supp = tp.GradRowSupport(Var{&tp, out_id});
                  if (tp.NeedsGrad(a)) {
                    if (supp != nullptr) {
                      AxpyRows(&tp.GradRefPartial(a, *supp), g, *supp, 1.0);
                    } else {
                      tp.GradRef(a).Axpy(1.0, g);
                    }
                  }
                  if (tp.NeedsGrad(b)) {
                    if (supp != nullptr) {
                      AxpyRows(&tp.GradRefPartial(b, *supp), g, *supp, sign);
                    } else {
                      tp.GradRef(b).Axpy(sign, g);
                    }
                  }
                });
}

}  // namespace

Var Add(Var a, Var b) { return AddLike(a, b, 1.0); }

Var Sub(Var a, Var b) { return AddLike(a, b, -1.0); }

Var Mul(Var a, Var b) {
  Tape* tape = CommonTape({a, b});
  const la::Matrix& av = a.value();
  const la::Matrix& bv = b.value();
  PPFR_CHECK(av.SameShape(bv));
  la::Matrix out = tape->NewValue(av.rows(), av.cols(), /*zero_init=*/false);
  la::ActiveBackend().Hadamard(av, bv, &out);
  const bool needs = AnyNeedsGrad({a, b});
  const int out_id = tape->num_nodes();
  return MakeOp(
      tape, std::move(out), needs, {a, b},
      [a, b, out_id](Tape& tp, const la::Matrix& g) {
        const la::Matrix& av = tp.Value(a);
        const la::Matrix& bv = tp.Value(b);
        const std::vector<int>* supp = tp.GradRowSupport(Var{&tp, out_id});
        auto accum = [&](Var target, const la::Matrix& other) {
          if (supp != nullptr) {
            la::Matrix& dt = tp.GradRefPartial(target, *supp);
            for (int r : *supp) {
              double* dr = dt.row(r);
              const double* gr = g.row(r);
              const double* orow = other.row(r);
              for (int c = 0; c < g.cols(); ++c) dr[c] += gr[c] * orow[c];
            }
          } else {
            tp.GradRef(target).Axpy(1.0, la::Hadamard(g, other));
          }
        };
        if (tp.NeedsGrad(a)) accum(a, bv);
        if (tp.NeedsGrad(b)) accum(b, av);
      });
}

Var Div(Var a, Var b) {
  Tape* tape = CommonTape({a, b});
  const la::Matrix& av = a.value();
  const la::Matrix& bv = b.value();
  PPFR_CHECK(av.SameShape(bv));
  la::Matrix out = tape->NewValue(av.rows(), av.cols(), /*zero_init=*/false);
  for (int64_t i = 0; i < av.size(); ++i) out.data()[i] = av.data()[i] / bv.data()[i];
  const bool needs = AnyNeedsGrad({a, b});
  return MakeOp(tape, std::move(out), needs, {a, b},
                [a, b](Tape& tp, const la::Matrix& g) {
                  const la::Matrix& av = tp.Value(a);
                  const la::Matrix& bv = tp.Value(b);
                  if (tp.NeedsGrad(a)) {
                    la::Matrix& da = tp.GradRef(a);
                    for (int64_t i = 0; i < av.size(); ++i) {
                      da.data()[i] += g.data()[i] / bv.data()[i];
                    }
                  }
                  if (tp.NeedsGrad(b)) {
                    la::Matrix& db = tp.GradRef(b);
                    for (int64_t i = 0; i < av.size(); ++i) {
                      db.data()[i] -=
                          g.data()[i] * av.data()[i] / (bv.data()[i] * bv.data()[i]);
                    }
                  }
                });
}

Var Neg(Var a) { return Scale(a, -1.0); }

Var Scale(Var a, double s) {
  return UnaryElementwise(
      a, [s](double x) { return s * x; }, [s](double) { return s; });
}

Var AddScalar(Var a, double s) {
  return UnaryElementwise(
      a, [s](double x) { return x + s; }, [](double) { return 1.0; });
}

Var AddRowVec(Var a, Var row) {
  Tape* tape = CommonTape({a, row});
  const la::Matrix& av = a.value();
  const la::Matrix& rv = row.value();
  PPFR_CHECK_EQ(rv.rows(), 1);
  PPFR_CHECK_EQ(rv.cols(), av.cols());
  la::Matrix out = tape->NewValue(av.rows(), av.cols(), /*zero_init=*/false);
  {
    const int cols = av.cols();
    la::ActiveBackend().Apply(av.rows(), RowGrain(cols), [&](int64_t r0, int64_t r1) {
      for (int64_t r = r0; r < r1; ++r) {
        const double* ar = av.row(static_cast<int>(r));
        double* o = out.row(static_cast<int>(r));
        for (int c = 0; c < cols; ++c) o[c] = ar[c] + rv(0, c);
      }
    });
  }
  const bool needs = AnyNeedsGrad({a, row});
  const int out_id = tape->num_nodes();
  return MakeOp(tape, std::move(out), needs, {a, row},
                [a, row, out_id](Tape& tp, const la::Matrix& g) {
                  const std::vector<int>* supp = tp.GradRowSupport(Var{&tp, out_id});
                  if (tp.NeedsGrad(a)) {
                    if (supp != nullptr) {
                      AxpyRows(&tp.GradRefPartial(a, *supp), g, *supp, 1.0);
                    } else {
                      tp.GradRef(a).Axpy(1.0, g);
                    }
                  }
                  if (tp.NeedsGrad(row)) {
                    la::Matrix& dr = tp.GradRef(row);
                    auto add_row = [&](int r) {
                      const double* gr = g.row(r);
                      for (int c = 0; c < g.cols(); ++c) dr(0, c) += gr[c];
                    };
                    if (supp != nullptr) {
                      for (int r : *supp) add_row(r);
                    } else {
                      for (int r = 0; r < g.rows(); ++r) add_row(r);
                    }
                  }
                });
}

Var ExpandScalar(Var s, int rows, int cols) {
  Tape* tape = CommonTape({s});
  PPFR_CHECK_EQ(s.rows(), 1);
  PPFR_CHECK_EQ(s.cols(), 1);
  la::Matrix out = tape->NewValue(rows, cols, /*zero_init=*/false);
  out.Fill(s.value()(0, 0));
  const bool needs = tape->NeedsGrad(s);
  return MakeOp(tape, std::move(out), needs, {s},
                [s](Tape& tp, const la::Matrix& g) {
                  if (tp.NeedsGrad(s)) tp.GradRef(s)(0, 0) += g.SumAll();
                });
}

Var Relu(Var a) {
  return UnaryElementwise(
      a, [](double x) { return x > 0.0 ? x : 0.0; },
      [](double x) { return x > 0.0 ? 1.0 : 0.0; });
}

Var LeakyRelu(Var a, double slope) {
  return UnaryElementwise(
      a, [slope](double x) { return x > 0.0 ? x : slope * x; },
      [slope](double x) { return x > 0.0 ? 1.0 : slope; });
}

Var Elu(Var a, double alpha) {
  return UnaryElementwise(
      a, [alpha](double x) { return x > 0.0 ? x : alpha * (std::exp(x) - 1.0); },
      [alpha](double x) { return x > 0.0 ? 1.0 : alpha * std::exp(x); });
}

Var Tanh(Var a) {
  return UnaryElementwise(
      a, [](double x) { return std::tanh(x); },
      [](double x) {
        const double t = std::tanh(x);
        return 1.0 - t * t;
      });
}

Var Sigmoid(Var a) {
  return UnaryElementwise(
      a, [](double x) { return 1.0 / (1.0 + std::exp(-x)); },
      [](double x) {
        const double s = 1.0 / (1.0 + std::exp(-x));
        return s * (1.0 - s);
      });
}

Var Square(Var a) {
  return UnaryElementwise(
      a, [](double x) { return x * x; }, [](double x) { return 2.0 * x; });
}

Var Sqrt(Var a) {
  return UnaryElementwise(
      a, [](double x) { return std::sqrt(std::max(x, 0.0)); },
      [](double x) { return 0.5 / std::sqrt(std::max(x, 1e-12)); });
}

Var Abs(Var a) {
  return UnaryElementwise(
      a, [](double x) { return std::fabs(x); },
      [](double x) { return x > 0.0 ? 1.0 : (x < 0.0 ? -1.0 : 0.0); });
}

namespace {

// One row of the log-softmax / softmax backward pair. `log_space` selects
// dx = g - softmax·rowsum(g) (log-softmax, y = log-probs) versus
// dx = y ∘ (g - <g, y>) (softmax, y = probs).
inline void SoftmaxRowBackward(bool log_space, const double* gr, const double* yr,
                               double* dr, int cols) {
  if (log_space) {
    double gsum = 0.0;
    for (int c = 0; c < cols; ++c) gsum += gr[c];
    for (int c = 0; c < cols; ++c) dr[c] += gr[c] - std::exp(yr[c]) * gsum;
  } else {
    double dot = 0.0;
    for (int c = 0; c < cols; ++c) dot += gr[c] * yr[c];
    for (int c = 0; c < cols; ++c) dr[c] += yr[c] * (gr[c] - dot);
  }
}

bool RowAllZero(const double* gr, int cols) {
  for (int c = 0; c < cols; ++c) {
    if (gr[c] != 0.0) return false;
  }
  return true;
}

Var SoftmaxLike(Var logits, bool log_space) {
  Tape* tape = CommonTape({logits});
  const la::Matrix& x = logits.value();
  la::Matrix out = tape->NewValue(x.rows(), x.cols(), /*zero_init=*/false);
  {
    const int cols = x.cols();
    la::ActiveBackend().Apply(x.rows(), RowGrain(cols), [&](int64_t r0, int64_t r1) {
      for (int64_t r = r0; r < r1; ++r) {
        const double* in = x.row(static_cast<int>(r));
        double* o = out.row(static_cast<int>(r));
        double mx = in[0];
        for (int c = 1; c < cols; ++c) mx = std::max(mx, in[c]);
        double sum = 0.0;
        for (int c = 0; c < cols; ++c) sum += std::exp(in[c] - mx);
        if (log_space) {
          const double lse = mx + std::log(sum);
          for (int c = 0; c < cols; ++c) o[c] = in[c] - lse;
        } else {
          for (int c = 0; c < cols; ++c) o[c] = std::exp(in[c] - mx) / sum;
        }
      }
    });
  }
  const bool needs = tape->NeedsGrad(logits);
  const int out_id = tape->num_nodes();
  return MakeOp(
      tape, std::move(out), needs, {logits},
      [logits, out_id, log_space](Tape& tp, const la::Matrix& g) {
        if (!tp.NeedsGrad(logits)) return;
        const Var out_var{&tp, out_id};
        const la::Matrix& y = tp.Value(out_var);
        const std::vector<int>* supp = tp.GradRowSupport(out_var);
        const int cols = g.cols();
        if (supp != nullptr) {
          la::Matrix& dx = tp.GradRefPartial(logits, *supp);
          for (int r : *supp) {
            SoftmaxRowBackward(log_space, g.row(r), y.row(r), dx.row(r), cols);
          }
          return;
        }
        la::Matrix& dx = tp.GradRef(logits);
        la::ActiveBackend().Apply(g.rows(), RowGrain(cols), [&](int64_t r0, int64_t r1) {
          for (int64_t r = r0; r < r1; ++r) {
            const double* gr = g.row(static_cast<int>(r));
            // An all-zero gradient row contributes exact zeros; skipping it
            // saves the exp/dot work without changing any bit.
            if (RowAllZero(gr, cols)) continue;
            SoftmaxRowBackward(log_space, gr, y.row(static_cast<int>(r)),
                               dx.row(static_cast<int>(r)), cols);
          }
        });
      });
}

}  // namespace

Var LogSoftmaxRows(Var logits) { return SoftmaxLike(logits, /*log_space=*/true); }

Var SoftmaxRows(Var logits) { return SoftmaxLike(logits, /*log_space=*/false); }

Var LogSoftmaxRowsLanes(Var logits, int lanes) {
  if (lanes == 1) return LogSoftmaxRows(logits);
  Tape* tape = CommonTape({logits});
  const la::Matrix& x = logits.value();
  PPFR_CHECK_GE(lanes, 1);
  PPFR_CHECK_EQ(x.cols() % lanes, 0);
  const int w = x.cols() / lanes;
  PPFR_CHECK_GT(w, 0);
  la::Matrix out = tape->NewValue(x.rows(), x.cols(), /*zero_init=*/false);
  {
    // Per lane window: the exact stable log-softmax loop of SoftmaxLike —
    // max, exp-sum, lse in the same order over the same w entries, so lane
    // l's output window is bitwise the narrow forward of that window.
    la::ActiveBackend().Apply(x.rows(), RowGrain(x.cols()), [&](int64_t r0, int64_t r1) {
      for (int64_t r = r0; r < r1; ++r) {
        for (int l = 0; l < lanes; ++l) {
          const double* in = x.row(static_cast<int>(r)) + l * w;
          double* o = out.row(static_cast<int>(r)) + l * w;
          double mx = in[0];
          for (int c = 1; c < w; ++c) mx = std::max(mx, in[c]);
          double sum = 0.0;
          for (int c = 0; c < w; ++c) sum += std::exp(in[c] - mx);
          const double lse = mx + std::log(sum);
          for (int c = 0; c < w; ++c) o[c] = in[c] - lse;
        }
      }
    });
  }
  const bool needs = tape->NeedsGrad(logits);
  const int out_id = tape->num_nodes();
  return MakeOp(
      tape, std::move(out), needs, {logits},
      [logits, out_id, lanes, w](Tape& tp, const la::Matrix& g) {
        if (!tp.NeedsGrad(logits)) return;
        const Var out_var{&tp, out_id};
        const la::Matrix& y = tp.Value(out_var);
        const std::vector<int>* supp = tp.GradRowSupport(out_var);
        if (supp != nullptr) {
          la::Matrix& dx = tp.GradRefPartial(logits, *supp);
          for (int r : *supp) {
            for (int l = 0; l < lanes; ++l) {
              SoftmaxRowBackward(/*log_space=*/true, g.row(r) + l * w,
                                 y.row(r) + l * w, dx.row(r) + l * w, w);
            }
          }
          return;
        }
        la::Matrix& dx = tp.GradRef(logits);
        la::ActiveBackend().Apply(
            g.rows(), RowGrain(g.cols()), [&](int64_t r0, int64_t r1) {
              for (int64_t r = r0; r < r1; ++r) {
                for (int l = 0; l < lanes; ++l) {
                  const double* gr = g.row(static_cast<int>(r)) + l * w;
                  // Per-WINDOW all-zero skip: a lane whose narrow serial
                  // backward would skip the row skips it here too, so the
                  // lanes stay bitwise independent of their batch-mates.
                  if (RowAllZero(gr, w)) continue;
                  SoftmaxRowBackward(/*log_space=*/true, gr,
                                     y.row(static_cast<int>(r)) + l * w,
                                     dx.row(static_cast<int>(r)) + l * w, w);
                }
              }
            });
      });
}

Var WeightedNll(Var logp, const std::vector<int>& rows, const std::vector<int>& labels,
                const std::vector<double>& weights, double denom) {
  Tape* tape = CommonTape({logp});
  PPFR_CHECK_EQ(rows.size(), labels.size());
  PPFR_CHECK_EQ(rows.size(), weights.size());
  PPFR_CHECK_GT(denom, 0.0);
  const la::Matrix& lp = logp.value();
  double loss = 0.0;
  for (size_t k = 0; k < rows.size(); ++k) {
    PPFR_CHECK_GE(labels[k], 0);
    PPFR_CHECK_LT(labels[k], lp.cols());
    loss -= weights[k] * lp(rows[k], labels[k]);
  }
  la::Matrix out = tape->NewValue(1, 1, /*zero_init=*/false);
  out(0, 0) = loss / denom;
  const bool needs = tape->NeedsGrad(logp);
  return MakeOp(tape, std::move(out), needs, {logp},
                [logp, rows, labels, weights, denom](Tape& tp, const la::Matrix& g) {
                  if (!tp.NeedsGrad(logp)) return;
                  // The only rows written are the loss rows — declaring them
                  // seeds the row-support propagation that keeps per-node
                  // influence backward passes on the seed's receptive field.
                  la::Matrix& dl = tp.GradRefPartial(logp, rows);
                  const double scale = g(0, 0) / denom;
                  for (size_t k = 0; k < rows.size(); ++k) {
                    dl(rows[k], labels[k]) -= scale * weights[k];
                  }
                });
}

Var WeightedNllLanes(Var logp, const std::vector<int>& rows,
                     const std::vector<int>& labels,
                     const std::vector<double>& weights, double denom, int lanes) {
  if (lanes == 1) return WeightedNll(logp, rows, labels, weights, denom);
  Tape* tape = CommonTape({logp});
  PPFR_CHECK_EQ(rows.size(), labels.size());
  PPFR_CHECK_EQ(rows.size(), weights.size());
  PPFR_CHECK_GT(denom, 0.0);
  const la::Matrix& lp = logp.value();
  PPFR_CHECK_GE(lanes, 1);
  PPFR_CHECK_EQ(lp.cols() % lanes, 0);
  const int w = lp.cols() / lanes;
  // Scalar output = Σ_l loss_l, each lane's loss accumulated in the narrow
  // op's k-order then divided by denom — the per-lane value is bitwise the
  // narrow forward; only the cross-lane sum is new (and is never
  // differentiated through: the backward below writes per-lane entries
  // directly).
  double total = 0.0;
  for (int l = 0; l < lanes; ++l) {
    double loss = 0.0;
    for (size_t k = 0; k < rows.size(); ++k) {
      PPFR_CHECK_GE(labels[k], 0);
      PPFR_CHECK_LT(labels[k], w);
      loss -= weights[k] * lp(rows[k], l * w + labels[k]);
    }
    total += loss / denom;
  }
  la::Matrix out = tape->NewValue(1, 1, /*zero_init=*/false);
  out(0, 0) = total;
  const bool needs = tape->NeedsGrad(logp);
  return MakeOp(tape, std::move(out), needs, {logp},
                [logp, rows, labels, weights, denom, lanes, w](Tape& tp,
                                                               const la::Matrix& g) {
                  if (!tp.NeedsGrad(logp)) return;
                  la::Matrix& dl = tp.GradRefPartial(logp, rows);
                  const double scale = g(0, 0) / denom;
                  for (int l = 0; l < lanes; ++l) {
                    for (size_t k = 0; k < rows.size(); ++k) {
                      dl(rows[k], l * w + labels[k]) -= scale * weights[k];
                    }
                  }
                });
}

Var GatherRows(Var a, const std::vector<int>& indices) {
  Tape* tape = CommonTape({a});
  const la::Matrix& av = a.value();
  for (int idx : indices) {
    PPFR_CHECK_GE(idx, 0);
    PPFR_CHECK_LT(idx, av.rows());
  }
  la::Matrix out =
      tape->NewValue(static_cast<int>(indices.size()), av.cols(), /*zero_init=*/false);
  {
    const int cols = av.cols();
    la::ActiveBackend().Apply(
        static_cast<int64_t>(indices.size()), RowGrain(cols), [&](int64_t k0, int64_t k1) {
          for (int64_t k = k0; k < k1; ++k) {
            const double* src = av.row(indices[static_cast<size_t>(k)]);
            std::copy(src, src + cols, out.row(static_cast<int>(k)));
          }
        });
  }
  const bool needs = tape->NeedsGrad(a);
  return MakeOp(tape, std::move(out), needs, {a},
                [a, indices](Tape& tp, const la::Matrix& g) {
                  if (!tp.NeedsGrad(a)) return;
                  // Serial scatter: indices may repeat, so rows can collide.
                  la::Matrix& da = tp.GradRefPartial(a, indices);
                  for (size_t k = 0; k < indices.size(); ++k) {
                    const double* gr = g.row(static_cast<int>(k));
                    double* dr = da.row(indices[k]);
                    for (int c = 0; c < g.cols(); ++c) dr[c] += gr[c];
                  }
                });
}

Var ConcatCols(const std::vector<Var>& parts) {
  PPFR_CHECK(!parts.empty());
  Tape* tape = parts[0].tape;
  int total_cols = 0;
  const int rows = parts[0].rows();
  bool needs = false;
  for (Var p : parts) {
    PPFR_CHECK(p.tape == tape);
    PPFR_CHECK_EQ(p.rows(), rows);
    total_cols += p.cols();
    needs = needs || tape->NeedsGrad(p);
  }
  la::Matrix out = tape->NewValue(rows, total_cols, /*zero_init=*/false);
  int offset = 0;
  for (Var p : parts) {
    const la::Matrix& pv = p.value();
    for (int r = 0; r < rows; ++r) {
      std::copy(pv.row(r), pv.row(r) + pv.cols(), out.row(r) + offset);
    }
    offset += pv.cols();
  }
  const int out_id = tape->num_nodes();
  return MakeOp(tape, std::move(out), needs, parts,
                [parts, out_id](Tape& tp, const la::Matrix& g) {
                  const std::vector<int>* supp = tp.GradRowSupport(Var{&tp, out_id});
                  int offset = 0;
                  for (Var p : parts) {
                    const int pc = tp.Value(p).cols();
                    if (tp.NeedsGrad(p)) {
                      la::Matrix& dp = supp != nullptr ? tp.GradRefPartial(p, *supp)
                                                       : tp.GradRef(p);
                      auto add_row = [&](int r) {
                        const double* gr = g.row(r) + offset;
                        double* dr = dp.row(r);
                        for (int c = 0; c < pc; ++c) dr[c] += gr[c];
                      };
                      if (supp != nullptr) {
                        for (int r : *supp) add_row(r);
                      } else {
                        for (int r = 0; r < g.rows(); ++r) add_row(r);
                      }
                    }
                    offset += pc;
                  }
                });
}

Var SliceCols(Var a, int col0, int width) {
  Tape* tape = CommonTape({a});
  const la::Matrix& av = a.value();
  PPFR_CHECK_GE(col0, 0);
  PPFR_CHECK_GT(width, 0);
  PPFR_CHECK_LE(col0 + width, av.cols());
  la::Matrix out = tape->NewValue(av.rows(), width, /*zero_init=*/false);
  {
    la::ActiveBackend().Apply(av.rows(), RowGrain(width), [&](int64_t r0, int64_t r1) {
      for (int64_t r = r0; r < r1; ++r) {
        const double* src = av.row(static_cast<int>(r)) + col0;
        std::copy(src, src + width, out.row(static_cast<int>(r)));
      }
    });
  }
  const bool needs = tape->NeedsGrad(a);
  const int out_id = tape->num_nodes();
  return MakeOp(tape, std::move(out), needs, {a},
                [a, col0, width, out_id](Tape& tp, const la::Matrix& g) {
                  if (!tp.NeedsGrad(a)) return;
                  const std::vector<int>* supp = tp.GradRowSupport(Var{&tp, out_id});
                  la::Matrix& da = supp != nullptr ? tp.GradRefPartial(a, *supp)
                                                   : tp.GradRef(a);
                  auto add_row = [&](int r) {
                    const double* gr = g.row(r);
                    double* dr = da.row(r) + col0;
                    for (int c = 0; c < width; ++c) dr[c] += gr[c];
                  };
                  if (supp != nullptr) {
                    for (int r : *supp) add_row(r);
                  } else {
                    for (int r = 0; r < g.rows(); ++r) add_row(r);
                  }
                });
}

Var SumAll(Var a) {
  Tape* tape = CommonTape({a});
  la::Matrix out = tape->NewValue(1, 1, /*zero_init=*/false);
  out(0, 0) = a.value().SumAll();
  const bool needs = tape->NeedsGrad(a);
  return MakeOp(tape, std::move(out), needs, {a},
                [a](Tape& tp, const la::Matrix& g) {
                  if (!tp.NeedsGrad(a)) return;
                  la::Matrix& da = tp.GradRef(a);
                  const double gg = g(0, 0);
                  for (int64_t i = 0; i < da.size(); ++i) da.data()[i] += gg;
                });
}

Var MeanAll(Var a) {
  const double n = static_cast<double>(a.value().size());
  PPFR_CHECK_GT(n, 0.0);
  return Scale(SumAll(a), 1.0 / n);
}

Var RowSums(Var a) {
  Tape* tape = CommonTape({a});
  const la::Matrix& av = a.value();
  la::Matrix out = tape->NewValue(av.rows(), 1, /*zero_init=*/false);
  {
    const int cols = av.cols();
    la::ActiveBackend().Apply(av.rows(), RowGrain(cols), [&](int64_t r0, int64_t r1) {
      for (int64_t r = r0; r < r1; ++r) {
        double s = 0.0;
        const double* row = av.row(static_cast<int>(r));
        for (int c = 0; c < cols; ++c) s += row[c];
        out(static_cast<int>(r), 0) = s;
      }
    });
  }
  const bool needs = tape->NeedsGrad(a);
  const int out_id = tape->num_nodes();
  return MakeOp(tape, std::move(out), needs, {a},
                [a, out_id](Tape& tp, const la::Matrix& g) {
                  if (!tp.NeedsGrad(a)) return;
                  const std::vector<int>* supp = tp.GradRowSupport(Var{&tp, out_id});
                  la::Matrix& da = supp != nullptr ? tp.GradRefPartial(a, *supp)
                                                   : tp.GradRef(a);
                  auto add_row = [&](int r) {
                    const double gr = g(r, 0);
                    double* dr = da.row(r);
                    for (int c = 0; c < da.cols(); ++c) dr[c] += gr;
                  };
                  if (supp != nullptr) {
                    for (int r : *supp) add_row(r);
                  } else {
                    for (int r = 0; r < da.rows(); ++r) add_row(r);
                  }
                });
}

Var LaplacianQuadratic(const std::shared_ptr<const la::CsrMatrix>& laplacian, Var y) {
  Tape* tape = CommonTape({y});
  PPFR_CHECK_EQ(laplacian->rows(), laplacian->cols());
  PPFR_CHECK_EQ(laplacian->rows(), y.rows());
  // Cache L*Y for the backward pass (dL/dY = 2 L Y, L symmetric).
  auto ly = std::make_shared<la::Matrix>(laplacian->Multiply(y.value()));
  la::Matrix out = tape->NewValue(1, 1, /*zero_init=*/false);
  out(0, 0) = la::Dot(y.value(), *ly);
  const bool needs = tape->NeedsGrad(y);
  return MakeOp(tape, std::move(out), needs, {y},
                [y, ly](Tape& tp, const la::Matrix& g) {
                  if (!tp.NeedsGrad(y)) return;
                  tp.GradRef(y).Axpy(2.0 * g(0, 0), *ly);
                });
}

Var EdgeSoftmaxAggregate(Var h, Var attn_left, Var attn_right,
                         const std::shared_ptr<const EdgeSet>& edges, int heads,
                         double leaky_slope) {
  Tape* tape = CommonTape({h, attn_left, attn_right});
  const la::Matrix& hv = h.value();
  const la::Matrix& sl = attn_left.value();
  const la::Matrix& sr = attn_right.value();
  const int n = edges->num_nodes;
  PPFR_CHECK_EQ(hv.rows(), n);
  PPFR_CHECK_EQ(sl.rows(), n);
  PPFR_CHECK_EQ(sr.rows(), n);
  PPFR_CHECK_EQ(sl.cols(), heads);
  PPFR_CHECK_EQ(sr.cols(), heads);
  PPFR_CHECK_EQ(hv.cols() % heads, 0);
  const int dim = hv.cols() / heads;
  const int64_t m = edges->num_edges();

  // Saved for backward: attention coefficients and pre-activation signs.
  auto alpha = std::make_shared<std::vector<double>>(static_cast<size_t>(m) * heads);
  auto z_pos = std::make_shared<std::vector<char>>(static_cast<size_t>(m) * heads);

  la::Matrix out = tape->NewValue(n, hv.cols(), /*zero_init=*/true);
  // Destination rows are independent — each (i, head) writes only out.row(i)
  // and its own alpha slots — so the forward fans out over destination
  // chunks. Chunk boundaries are placed on CUMULATIVE degree (row_ptr is the
  // prefix sum), not row count: per-row cost is O(degree), so hub nodes in a
  // power-law graph would otherwise serialise one chunk. The partition never
  // affects results, only which thread computes them.
  const int64_t edge_grain = std::max<int64_t>(1, kApplyGrain / std::max(heads * dim, 1));
  const int64_t num_chunks =
      n == 0 ? 0 : std::max<int64_t>(1, std::min<int64_t>(n, m / edge_grain));
  const std::vector<int64_t> bounds =
      num_chunks > 0 ? la::NnzBalancedRowBounds(edges->row_ptr, n, num_chunks)
                     : std::vector<int64_t>{0};
  la::ActiveBackend().Apply(num_chunks, 1, [&](int64_t c0, int64_t c1) {
    const int64_t i0 = bounds[static_cast<size_t>(c0)];
    const int64_t i1 = bounds[static_cast<size_t>(c1)];
    for (int head = 0; head < heads; ++head) {
      const int col0 = head * dim;
      for (int64_t i = i0; i < i1; ++i) {
        const int64_t begin = edges->row_ptr[i];
        const int64_t end = edges->row_ptr[i + 1];
        if (begin == end) continue;
        // Stable softmax over e_ij.
        double mx = -1e300;
        for (int64_t k = begin; k < end; ++k) {
          const int j = edges->col_idx[k];
          const double z = sl(static_cast<int>(i), head) + sr(j, head);
          const double e = z > 0.0 ? z : leaky_slope * z;
          (*z_pos)[static_cast<size_t>(k) * heads + head] = z > 0.0 ? 1 : 0;
          (*alpha)[static_cast<size_t>(k) * heads + head] = e;  // store e temporarily
          mx = std::max(mx, e);
        }
        double denom = 0.0;
        for (int64_t k = begin; k < end; ++k) {
          double& slot = (*alpha)[static_cast<size_t>(k) * heads + head];
          slot = std::exp(slot - mx);
          denom += slot;
        }
        double* out_row = out.row(static_cast<int>(i)) + col0;
        for (int64_t k = begin; k < end; ++k) {
          double& slot = (*alpha)[static_cast<size_t>(k) * heads + head];
          slot /= denom;  // now alpha_ij
          const double* hj = hv.row(edges->col_idx[k]) + col0;
          for (int c = 0; c < dim; ++c) out_row[c] += slot * hj[c];
        }
      }
    }
  });

  const bool needs = AnyNeedsGrad({h, attn_left, attn_right});
  const int out_id = tape->num_nodes();
  return MakeOp(
      tape, std::move(out), needs, {h, attn_left, attn_right},
      [h, attn_left, attn_right, edges, heads, dim, leaky_slope, alpha, z_pos,
       out_id](Tape& tp, const la::Matrix& g) {
        const la::Matrix& hv = tp.Value(h);
        const int n = edges->num_nodes;
        const bool need_h = tp.NeedsGrad(h);
        const bool need_attn = tp.NeedsGrad(attn_left) || tp.NeedsGrad(attn_right);

        // When the output gradient's nonzero-row support is known (the
        // seeded per-node influence passes), only the supported destinations
        // carry gradient: a skipped destination's edges would contribute
        // exact ±0 products. The touched parent rows are then the union of
        // the supported destinations' neighbour lists (dh / dsr source rows;
        // self-loops put i itself in its own list) and the support rows
        // themselves (dsl), declared via GradRefPartial so resetting for the
        // next seed stays O(receptive field) — GAT per-node influence costs
        // O(2-hop) like GCN's SpMM path instead of O(n).
        const std::vector<int>* supp = tp.GradRowSupport(Var{&tp, out_id});
        // thread_local scratch: runs once per seed per layer inside the
        // pooled per-node loop, which must stay allocation-free.
        thread_local std::vector<int> targets;
        la::Matrix* dh = nullptr;
        la::Matrix* dsl = nullptr;
        la::Matrix* dsr = nullptr;
        if (supp != nullptr) {
          targets.clear();
          for (int i : *supp) {
            for (int64_t k = edges->row_ptr[i]; k < edges->row_ptr[i + 1]; ++k) {
              targets.push_back(edges->col_idx[k]);
            }
          }
          std::sort(targets.begin(), targets.end());
          targets.erase(std::unique(targets.begin(), targets.end()), targets.end());
          dh = need_h ? &tp.GradRefPartial(h, targets) : nullptr;
          dsl = tp.NeedsGrad(attn_left) ? &tp.GradRefPartial(attn_left, *supp)
                                        : nullptr;
          dsr = tp.NeedsGrad(attn_right) ? &tp.GradRefPartial(attn_right, targets)
                                         : nullptr;
        } else {
          dh = need_h ? &tp.GradRef(h) : nullptr;
          dsl = tp.NeedsGrad(attn_left) ? &tp.GradRef(attn_left) : nullptr;
          dsr = tp.NeedsGrad(attn_right) ? &tp.GradRef(attn_right) : nullptr;
        }

        // Source-node scatter rows collide across destinations, so the
        // backward stays serial.
        std::vector<double> dalpha;  // per-edge scratch for the current (i, head)
        const auto backward_dest = [&](int i, int head) {
          const int col0 = head * dim;
          const int64_t begin = edges->row_ptr[i];
          const int64_t end = edges->row_ptr[i + 1];
          if (begin == end) return;
          const double* gi = g.row(i) + col0;
          dalpha.assign(static_cast<size_t>(end - begin), 0.0);
          double weighted_sum = 0.0;  // sum_j alpha_ij * dalpha_ij
          for (int64_t k = begin; k < end; ++k) {
            const int j = edges->col_idx[k];
            const double a = (*alpha)[static_cast<size_t>(k) * heads + head];
            const double* hj = hv.row(j) + col0;
            double dot = 0.0;
            for (int c = 0; c < dim; ++c) dot += gi[c] * hj[c];
            dalpha[static_cast<size_t>(k - begin)] = dot;
            weighted_sum += a * dot;
            if (need_h) {
              double* dhj = dh->row(j) + col0;
              for (int c = 0; c < dim; ++c) dhj[c] += a * gi[c];
            }
          }
          if (!need_attn) return;
          for (int64_t k = begin; k < end; ++k) {
            const int j = edges->col_idx[k];
            const double a = (*alpha)[static_cast<size_t>(k) * heads + head];
            const double de =
                a * (dalpha[static_cast<size_t>(k - begin)] - weighted_sum);
            const double dz =
                (*z_pos)[static_cast<size_t>(k) * heads + head] ? de : leaky_slope * de;
            if (dsl != nullptr) (*dsl)(i, head) += dz;
            if (dsr != nullptr) (*dsr)(j, head) += dz;
          }
        };
        for (int head = 0; head < heads; ++head) {
          if (supp != nullptr) {
            for (int i : *supp) backward_dest(i, head);
          } else {
            for (int i = 0; i < n; ++i) backward_dest(i, head);
          }
        }
      });
}

}  // namespace ppfr::ag

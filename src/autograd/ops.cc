#include "autograd/ops.h"

#include <algorithm>
#include <cmath>

namespace ppfr::ag {
namespace {

// Creates the output node; `backward(tape, out_grad)` routes gradients to
// parents. Reduces the per-op boilerplate of discovering the output id.
template <typename BackwardFn>
Var MakeOp(Tape* tape, la::Matrix value, bool needs_grad, BackwardFn backward) {
  const int out_id = tape->num_nodes();
  return tape->MakeNode(std::move(value), needs_grad, [out_id, backward](Tape& tp) {
    const la::Matrix& g = tp.GradRef(Var{&tp, out_id});
    backward(tp, g);
  });
}

bool AnyNeedsGrad(std::initializer_list<Var> vars) {
  for (Var v : vars) {
    if (v.tape->NeedsGrad(v)) return true;
  }
  return false;
}

Tape* CommonTape(std::initializer_list<Var> vars) {
  Tape* tape = nullptr;
  for (Var v : vars) {
    PPFR_CHECK(v.valid());
    if (tape == nullptr) tape = v.tape;
    PPFR_CHECK(v.tape == tape) << "ops must stay on a single tape";
  }
  return tape;
}

// Elementwise unary op helper: out = f(a), da += g * f'(a).
template <typename F, typename DF>
Var UnaryElementwise(Var a, F f, DF df) {
  Tape* tape = CommonTape({a});
  const la::Matrix& av = a.value();
  la::Matrix out(av.rows(), av.cols());
  for (int64_t i = 0; i < av.size(); ++i) out.data()[i] = f(av.data()[i]);
  const bool needs = tape->NeedsGrad(a);
  return MakeOp(tape, std::move(out), needs, [a, df](Tape& tp, const la::Matrix& g) {
    if (!tp.NeedsGrad(a)) return;
    la::Matrix& da = tp.GradRef(a);
    const la::Matrix& av = tp.Value(a);
    for (int64_t i = 0; i < av.size(); ++i) {
      da.data()[i] += g.data()[i] * df(av.data()[i]);
    }
  });
}

}  // namespace

std::shared_ptr<const SparseOperand> MakeSparseOperand(la::CsrMatrix m, bool symmetric) {
  auto op = std::make_shared<SparseOperand>();
  op->symmetric = symmetric;
  op->mat = std::move(m);
  if (!symmetric) op->mat_t = op->mat.Transposed();
  return op;
}

Var MatMul(Var a, Var b) {
  Tape* tape = CommonTape({a, b});
  la::Matrix out = la::MatMul(a.value(), b.value());
  const bool needs = AnyNeedsGrad({a, b});
  return MakeOp(tape, std::move(out), needs, [a, b](Tape& tp, const la::Matrix& g) {
    if (tp.NeedsGrad(a)) tp.GradRef(a).Axpy(1.0, la::MatMulTransB(g, tp.Value(b)));
    if (tp.NeedsGrad(b)) tp.GradRef(b).Axpy(1.0, la::MatMulTransA(tp.Value(a), g));
  });
}

Var SpMM(const std::shared_ptr<const SparseOperand>& sp, Var x) {
  Tape* tape = CommonTape({x});
  la::Matrix out = sp->mat.Multiply(x.value());
  const bool needs = tape->NeedsGrad(x);
  return MakeOp(tape, std::move(out), needs, [sp, x](Tape& tp, const la::Matrix& g) {
    if (!tp.NeedsGrad(x)) return;
    const la::CsrMatrix& at = sp->symmetric ? sp->mat : sp->mat_t;
    at.MultiplyAccum(g, 1.0, &tp.GradRef(x));
  });
}

Var Add(Var a, Var b) {
  Tape* tape = CommonTape({a, b});
  la::Matrix out = la::Add(a.value(), b.value());
  const bool needs = AnyNeedsGrad({a, b});
  return MakeOp(tape, std::move(out), needs, [a, b](Tape& tp, const la::Matrix& g) {
    if (tp.NeedsGrad(a)) tp.GradRef(a).Axpy(1.0, g);
    if (tp.NeedsGrad(b)) tp.GradRef(b).Axpy(1.0, g);
  });
}

Var Sub(Var a, Var b) {
  Tape* tape = CommonTape({a, b});
  la::Matrix out = la::Sub(a.value(), b.value());
  const bool needs = AnyNeedsGrad({a, b});
  return MakeOp(tape, std::move(out), needs, [a, b](Tape& tp, const la::Matrix& g) {
    if (tp.NeedsGrad(a)) tp.GradRef(a).Axpy(1.0, g);
    if (tp.NeedsGrad(b)) tp.GradRef(b).Axpy(-1.0, g);
  });
}

Var Mul(Var a, Var b) {
  Tape* tape = CommonTape({a, b});
  la::Matrix out = la::Hadamard(a.value(), b.value());
  const bool needs = AnyNeedsGrad({a, b});
  return MakeOp(tape, std::move(out), needs, [a, b](Tape& tp, const la::Matrix& g) {
    if (tp.NeedsGrad(a)) tp.GradRef(a).Axpy(1.0, la::Hadamard(g, tp.Value(b)));
    if (tp.NeedsGrad(b)) tp.GradRef(b).Axpy(1.0, la::Hadamard(g, tp.Value(a)));
  });
}

Var Div(Var a, Var b) {
  Tape* tape = CommonTape({a, b});
  const la::Matrix& av = a.value();
  const la::Matrix& bv = b.value();
  PPFR_CHECK(av.SameShape(bv));
  la::Matrix out(av.rows(), av.cols());
  for (int64_t i = 0; i < av.size(); ++i) out.data()[i] = av.data()[i] / bv.data()[i];
  const bool needs = AnyNeedsGrad({a, b});
  return MakeOp(tape, std::move(out), needs, [a, b](Tape& tp, const la::Matrix& g) {
    const la::Matrix& av = tp.Value(a);
    const la::Matrix& bv = tp.Value(b);
    if (tp.NeedsGrad(a)) {
      la::Matrix& da = tp.GradRef(a);
      for (int64_t i = 0; i < av.size(); ++i) da.data()[i] += g.data()[i] / bv.data()[i];
    }
    if (tp.NeedsGrad(b)) {
      la::Matrix& db = tp.GradRef(b);
      for (int64_t i = 0; i < av.size(); ++i) {
        db.data()[i] -= g.data()[i] * av.data()[i] / (bv.data()[i] * bv.data()[i]);
      }
    }
  });
}

Var Neg(Var a) { return Scale(a, -1.0); }

Var Scale(Var a, double s) {
  return UnaryElementwise(
      a, [s](double x) { return s * x; }, [s](double) { return s; });
}

Var AddScalar(Var a, double s) {
  return UnaryElementwise(
      a, [s](double x) { return x + s; }, [](double) { return 1.0; });
}

Var AddRowVec(Var a, Var row) {
  Tape* tape = CommonTape({a, row});
  const la::Matrix& av = a.value();
  const la::Matrix& rv = row.value();
  PPFR_CHECK_EQ(rv.rows(), 1);
  PPFR_CHECK_EQ(rv.cols(), av.cols());
  la::Matrix out = av;
  for (int r = 0; r < av.rows(); ++r) {
    double* o = out.row(r);
    for (int c = 0; c < av.cols(); ++c) o[c] += rv(0, c);
  }
  const bool needs = AnyNeedsGrad({a, row});
  return MakeOp(tape, std::move(out), needs, [a, row](Tape& tp, const la::Matrix& g) {
    if (tp.NeedsGrad(a)) tp.GradRef(a).Axpy(1.0, g);
    if (tp.NeedsGrad(row)) {
      la::Matrix& dr = tp.GradRef(row);
      for (int r = 0; r < g.rows(); ++r) {
        const double* gr = g.row(r);
        for (int c = 0; c < g.cols(); ++c) dr(0, c) += gr[c];
      }
    }
  });
}

Var ExpandScalar(Var s, int rows, int cols) {
  Tape* tape = CommonTape({s});
  PPFR_CHECK_EQ(s.rows(), 1);
  PPFR_CHECK_EQ(s.cols(), 1);
  la::Matrix out(rows, cols, s.value()(0, 0));
  const bool needs = tape->NeedsGrad(s);
  return MakeOp(tape, std::move(out), needs, [s](Tape& tp, const la::Matrix& g) {
    if (tp.NeedsGrad(s)) tp.GradRef(s)(0, 0) += g.SumAll();
  });
}

Var Relu(Var a) {
  return UnaryElementwise(
      a, [](double x) { return x > 0.0 ? x : 0.0; },
      [](double x) { return x > 0.0 ? 1.0 : 0.0; });
}

Var LeakyRelu(Var a, double slope) {
  return UnaryElementwise(
      a, [slope](double x) { return x > 0.0 ? x : slope * x; },
      [slope](double x) { return x > 0.0 ? 1.0 : slope; });
}

Var Elu(Var a, double alpha) {
  return UnaryElementwise(
      a, [alpha](double x) { return x > 0.0 ? x : alpha * (std::exp(x) - 1.0); },
      [alpha](double x) { return x > 0.0 ? 1.0 : alpha * std::exp(x); });
}

Var Tanh(Var a) {
  return UnaryElementwise(
      a, [](double x) { return std::tanh(x); },
      [](double x) {
        const double t = std::tanh(x);
        return 1.0 - t * t;
      });
}

Var Sigmoid(Var a) {
  return UnaryElementwise(
      a, [](double x) { return 1.0 / (1.0 + std::exp(-x)); },
      [](double x) {
        const double s = 1.0 / (1.0 + std::exp(-x));
        return s * (1.0 - s);
      });
}

Var Square(Var a) {
  return UnaryElementwise(
      a, [](double x) { return x * x; }, [](double x) { return 2.0 * x; });
}

Var Sqrt(Var a) {
  return UnaryElementwise(
      a, [](double x) { return std::sqrt(std::max(x, 0.0)); },
      [](double x) { return 0.5 / std::sqrt(std::max(x, 1e-12)); });
}

Var Abs(Var a) {
  return UnaryElementwise(
      a, [](double x) { return std::fabs(x); },
      [](double x) { return x > 0.0 ? 1.0 : (x < 0.0 ? -1.0 : 0.0); });
}

Var LogSoftmaxRows(Var logits) {
  Tape* tape = CommonTape({logits});
  const la::Matrix& x = logits.value();
  la::Matrix out(x.rows(), x.cols());
  for (int r = 0; r < x.rows(); ++r) {
    const double* in = x.row(r);
    double* o = out.row(r);
    double mx = in[0];
    for (int c = 1; c < x.cols(); ++c) mx = std::max(mx, in[c]);
    double sum = 0.0;
    for (int c = 0; c < x.cols(); ++c) sum += std::exp(in[c] - mx);
    const double lse = mx + std::log(sum);
    for (int c = 0; c < x.cols(); ++c) o[c] = in[c] - lse;
  }
  const bool needs = tape->NeedsGrad(logits);
  const int out_id = tape->num_nodes();
  return tape->MakeNode(std::move(out), needs, [logits, out_id](Tape& tp) {
    if (!tp.NeedsGrad(logits)) return;
    const la::Matrix& g = tp.GradRef(Var{&tp, out_id});
    const la::Matrix& y = tp.Value(Var{&tp, out_id});  // log-probs
    la::Matrix& dx = tp.GradRef(logits);
    // dx = g - softmax(x) * rowsum(g)
    for (int r = 0; r < g.rows(); ++r) {
      const double* gr = g.row(r);
      const double* yr = y.row(r);
      double* dr = dx.row(r);
      double gsum = 0.0;
      for (int c = 0; c < g.cols(); ++c) gsum += gr[c];
      for (int c = 0; c < g.cols(); ++c) dr[c] += gr[c] - std::exp(yr[c]) * gsum;
    }
  });
}

Var SoftmaxRows(Var logits) {
  Tape* tape = CommonTape({logits});
  la::Matrix out = la::SoftmaxRows(logits.value());
  const bool needs = tape->NeedsGrad(logits);
  const int out_id = tape->num_nodes();
  return tape->MakeNode(std::move(out), needs, [logits, out_id](Tape& tp) {
    if (!tp.NeedsGrad(logits)) return;
    const la::Matrix& g = tp.GradRef(Var{&tp, out_id});
    const la::Matrix& s = tp.Value(Var{&tp, out_id});
    la::Matrix& dx = tp.GradRef(logits);
    // dx = s ∘ (g - <g, s>_row)
    for (int r = 0; r < g.rows(); ++r) {
      const double* gr = g.row(r);
      const double* sr = s.row(r);
      double* dr = dx.row(r);
      double dot = 0.0;
      for (int c = 0; c < g.cols(); ++c) dot += gr[c] * sr[c];
      for (int c = 0; c < g.cols(); ++c) dr[c] += sr[c] * (gr[c] - dot);
    }
  });
}

Var WeightedNll(Var logp, const std::vector<int>& rows, const std::vector<int>& labels,
                const std::vector<double>& weights, double denom) {
  Tape* tape = CommonTape({logp});
  PPFR_CHECK_EQ(rows.size(), labels.size());
  PPFR_CHECK_EQ(rows.size(), weights.size());
  PPFR_CHECK_GT(denom, 0.0);
  const la::Matrix& lp = logp.value();
  double loss = 0.0;
  for (size_t k = 0; k < rows.size(); ++k) {
    PPFR_CHECK_GE(labels[k], 0);
    PPFR_CHECK_LT(labels[k], lp.cols());
    loss -= weights[k] * lp(rows[k], labels[k]);
  }
  la::Matrix out(1, 1);
  out(0, 0) = loss / denom;
  const bool needs = tape->NeedsGrad(logp);
  return MakeOp(tape, std::move(out), needs,
                [logp, rows, labels, weights, denom](Tape& tp, const la::Matrix& g) {
                  if (!tp.NeedsGrad(logp)) return;
                  la::Matrix& dl = tp.GradRef(logp);
                  const double scale = g(0, 0) / denom;
                  for (size_t k = 0; k < rows.size(); ++k) {
                    dl(rows[k], labels[k]) -= scale * weights[k];
                  }
                });
}

Var GatherRows(Var a, const std::vector<int>& indices) {
  Tape* tape = CommonTape({a});
  const la::Matrix& av = a.value();
  la::Matrix out(static_cast<int>(indices.size()), av.cols());
  for (size_t k = 0; k < indices.size(); ++k) {
    PPFR_CHECK_GE(indices[k], 0);
    PPFR_CHECK_LT(indices[k], av.rows());
    std::copy(av.row(indices[k]), av.row(indices[k]) + av.cols(),
              out.row(static_cast<int>(k)));
  }
  const bool needs = tape->NeedsGrad(a);
  return MakeOp(tape, std::move(out), needs, [a, indices](Tape& tp, const la::Matrix& g) {
    if (!tp.NeedsGrad(a)) return;
    la::Matrix& da = tp.GradRef(a);
    for (size_t k = 0; k < indices.size(); ++k) {
      const double* gr = g.row(static_cast<int>(k));
      double* dr = da.row(indices[k]);
      for (int c = 0; c < g.cols(); ++c) dr[c] += gr[c];
    }
  });
}

Var ConcatCols(const std::vector<Var>& parts) {
  PPFR_CHECK(!parts.empty());
  Tape* tape = parts[0].tape;
  int total_cols = 0;
  const int rows = parts[0].rows();
  bool needs = false;
  for (Var p : parts) {
    PPFR_CHECK(p.tape == tape);
    PPFR_CHECK_EQ(p.rows(), rows);
    total_cols += p.cols();
    needs = needs || tape->NeedsGrad(p);
  }
  la::Matrix out(rows, total_cols);
  int offset = 0;
  for (Var p : parts) {
    const la::Matrix& pv = p.value();
    for (int r = 0; r < rows; ++r) {
      std::copy(pv.row(r), pv.row(r) + pv.cols(), out.row(r) + offset);
    }
    offset += pv.cols();
  }
  return MakeOp(tape, std::move(out), needs, [parts](Tape& tp, const la::Matrix& g) {
    int offset = 0;
    for (Var p : parts) {
      const int pc = tp.Value(p).cols();
      if (tp.NeedsGrad(p)) {
        la::Matrix& dp = tp.GradRef(p);
        for (int r = 0; r < g.rows(); ++r) {
          const double* gr = g.row(r) + offset;
          double* dr = dp.row(r);
          for (int c = 0; c < pc; ++c) dr[c] += gr[c];
        }
      }
      offset += pc;
    }
  });
}

Var SumAll(Var a) {
  Tape* tape = CommonTape({a});
  la::Matrix out(1, 1);
  out(0, 0) = a.value().SumAll();
  const bool needs = tape->NeedsGrad(a);
  return MakeOp(tape, std::move(out), needs, [a](Tape& tp, const la::Matrix& g) {
    if (!tp.NeedsGrad(a)) return;
    la::Matrix& da = tp.GradRef(a);
    const double gg = g(0, 0);
    for (int64_t i = 0; i < da.size(); ++i) da.data()[i] += gg;
  });
}

Var MeanAll(Var a) {
  const double n = static_cast<double>(a.value().size());
  PPFR_CHECK_GT(n, 0.0);
  return Scale(SumAll(a), 1.0 / n);
}

Var RowSums(Var a) {
  Tape* tape = CommonTape({a});
  const la::Matrix& av = a.value();
  la::Matrix out(av.rows(), 1);
  for (int r = 0; r < av.rows(); ++r) {
    double s = 0.0;
    const double* row = av.row(r);
    for (int c = 0; c < av.cols(); ++c) s += row[c];
    out(r, 0) = s;
  }
  const bool needs = tape->NeedsGrad(a);
  return MakeOp(tape, std::move(out), needs, [a](Tape& tp, const la::Matrix& g) {
    if (!tp.NeedsGrad(a)) return;
    la::Matrix& da = tp.GradRef(a);
    for (int r = 0; r < da.rows(); ++r) {
      const double gr = g(r, 0);
      double* dr = da.row(r);
      for (int c = 0; c < da.cols(); ++c) dr[c] += gr;
    }
  });
}

Var LaplacianQuadratic(const std::shared_ptr<const la::CsrMatrix>& laplacian, Var y) {
  Tape* tape = CommonTape({y});
  PPFR_CHECK_EQ(laplacian->rows(), laplacian->cols());
  PPFR_CHECK_EQ(laplacian->rows(), y.rows());
  // Cache L*Y for the backward pass (dL/dY = 2 L Y, L symmetric).
  auto ly = std::make_shared<la::Matrix>(laplacian->Multiply(y.value()));
  la::Matrix out(1, 1);
  out(0, 0) = la::Dot(y.value(), *ly);
  const bool needs = tape->NeedsGrad(y);
  return MakeOp(tape, std::move(out), needs, [y, ly](Tape& tp, const la::Matrix& g) {
    if (!tp.NeedsGrad(y)) return;
    tp.GradRef(y).Axpy(2.0 * g(0, 0), *ly);
  });
}

Var EdgeSoftmaxAggregate(Var h, Var attn_left, Var attn_right,
                         const std::shared_ptr<const EdgeSet>& edges, int heads,
                         double leaky_slope) {
  Tape* tape = CommonTape({h, attn_left, attn_right});
  const la::Matrix& hv = h.value();
  const la::Matrix& sl = attn_left.value();
  const la::Matrix& sr = attn_right.value();
  const int n = edges->num_nodes;
  PPFR_CHECK_EQ(hv.rows(), n);
  PPFR_CHECK_EQ(sl.rows(), n);
  PPFR_CHECK_EQ(sr.rows(), n);
  PPFR_CHECK_EQ(sl.cols(), heads);
  PPFR_CHECK_EQ(sr.cols(), heads);
  PPFR_CHECK_EQ(hv.cols() % heads, 0);
  const int dim = hv.cols() / heads;
  const int64_t m = edges->num_edges();

  // Saved for backward: attention coefficients and pre-activation signs.
  auto alpha = std::make_shared<std::vector<double>>(static_cast<size_t>(m) * heads);
  auto z_pos = std::make_shared<std::vector<char>>(static_cast<size_t>(m) * heads);

  la::Matrix out(n, hv.cols());
  for (int head = 0; head < heads; ++head) {
    const int col0 = head * dim;
    for (int i = 0; i < n; ++i) {
      const int64_t begin = edges->row_ptr[i];
      const int64_t end = edges->row_ptr[i + 1];
      if (begin == end) continue;
      // Stable softmax over e_ij.
      double mx = -1e300;
      for (int64_t k = begin; k < end; ++k) {
        const int j = edges->col_idx[k];
        const double z = sl(i, head) + sr(j, head);
        const double e = z > 0.0 ? z : leaky_slope * z;
        (*z_pos)[static_cast<size_t>(k) * heads + head] = z > 0.0 ? 1 : 0;
        (*alpha)[static_cast<size_t>(k) * heads + head] = e;  // store e temporarily
        mx = std::max(mx, e);
      }
      double denom = 0.0;
      for (int64_t k = begin; k < end; ++k) {
        double& slot = (*alpha)[static_cast<size_t>(k) * heads + head];
        slot = std::exp(slot - mx);
        denom += slot;
      }
      double* out_row = out.row(i) + col0;
      for (int64_t k = begin; k < end; ++k) {
        double& slot = (*alpha)[static_cast<size_t>(k) * heads + head];
        slot /= denom;  // now alpha_ij
        const double* hj = hv.row(edges->col_idx[k]) + col0;
        for (int c = 0; c < dim; ++c) out_row[c] += slot * hj[c];
      }
    }
  }

  const bool needs = AnyNeedsGrad({h, attn_left, attn_right});
  return MakeOp(
      tape, std::move(out), needs,
      [h, attn_left, attn_right, edges, heads, dim, leaky_slope, alpha, z_pos](
          Tape& tp, const la::Matrix& g) {
        const la::Matrix& hv = tp.Value(h);
        const int n = edges->num_nodes;
        const bool need_h = tp.NeedsGrad(h);
        const bool need_attn = tp.NeedsGrad(attn_left) || tp.NeedsGrad(attn_right);
        la::Matrix* dh = need_h ? &tp.GradRef(h) : nullptr;
        la::Matrix* dsl = tp.NeedsGrad(attn_left) ? &tp.GradRef(attn_left) : nullptr;
        la::Matrix* dsr = tp.NeedsGrad(attn_right) ? &tp.GradRef(attn_right) : nullptr;

        std::vector<double> dalpha;  // per-edge scratch for the current (i, head)
        for (int head = 0; head < heads; ++head) {
          const int col0 = head * dim;
          for (int i = 0; i < n; ++i) {
            const int64_t begin = edges->row_ptr[i];
            const int64_t end = edges->row_ptr[i + 1];
            if (begin == end) continue;
            const double* gi = g.row(i) + col0;
            dalpha.assign(static_cast<size_t>(end - begin), 0.0);
            double weighted_sum = 0.0;  // sum_j alpha_ij * dalpha_ij
            for (int64_t k = begin; k < end; ++k) {
              const int j = edges->col_idx[k];
              const double a = (*alpha)[static_cast<size_t>(k) * heads + head];
              const double* hj = hv.row(j) + col0;
              double dot = 0.0;
              for (int c = 0; c < dim; ++c) dot += gi[c] * hj[c];
              dalpha[static_cast<size_t>(k - begin)] = dot;
              weighted_sum += a * dot;
              if (need_h) {
                double* dhj = dh->row(j) + col0;
                for (int c = 0; c < dim; ++c) dhj[c] += a * gi[c];
              }
            }
            if (!need_attn) continue;
            for (int64_t k = begin; k < end; ++k) {
              const int j = edges->col_idx[k];
              const double a = (*alpha)[static_cast<size_t>(k) * heads + head];
              const double de =
                  a * (dalpha[static_cast<size_t>(k - begin)] - weighted_sum);
              const double dz =
                  (*z_pos)[static_cast<size_t>(k) * heads + head] ? de : leaky_slope * de;
              if (dsl != nullptr) (*dsl)(i, head) += dz;
              if (dsr != nullptr) (*dsr)(j, head) += dz;
            }
          }
        }
      });
}

}  // namespace ppfr::ag

#ifndef PPFR_AUTOGRAD_OPS_H_
#define PPFR_AUTOGRAD_OPS_H_

#include <memory>
#include <vector>

#include "autograd/tape.h"
#include "la/csr_matrix.h"

namespace ppfr::ag {

// A sparse matrix prepared for use inside the autograd graph. The transpose
// is carried along because backward passes multiply by it; for symmetric
// operators (Â, Laplacians) it aliases the forward matrix.
struct SparseOperand {
  la::CsrMatrix mat;
  la::CsrMatrix mat_t;
  bool symmetric = false;
};

// Builds a SparseOperand, computing (or aliasing) the transpose.
std::shared_ptr<const SparseOperand> MakeSparseOperand(la::CsrMatrix m, bool symmetric);

// Destination-grouped edge list used by the fused GAT attention op. Row i
// lists the source nodes j that message into i (usually including i itself).
struct EdgeSet {
  int num_nodes = 0;
  std::vector<int64_t> row_ptr;  // size num_nodes + 1
  std::vector<int> col_idx;      // concatenated neighbour lists

  int64_t num_edges() const { return static_cast<int64_t>(col_idx.size()); }
};

// ---- Linear algebra ----

// Dense product a @ b.
Var MatMul(Var a, Var b);
// Sparse-dense product sp @ x.
Var SpMM(const std::shared_ptr<const SparseOperand>& sp, Var x);

// ---- Lane-blocked ops (fused multi-point tape replay) ----
//
// A lane-wide tensor of base width w stores replay lane l in columns
// [l·w, (l+1)·w). The lane ops below run `lanes` independent copies of the
// narrow op in one pass; per-lane column windows never mix, and each lane's
// forward/backward is bitwise identical to the narrow op applied to that
// lane's windows (the la::Backend::GemmLanes* contract). SpMM, elementwise
// ops, AddRowVec, ConcatCols and GatherRows are column-count-invariant per
// element, so the lane-wide graph reuses them UNCHANGED — only ops that
// contract over columns (GEMM) or mix a row's columns (softmax, NLL picks)
// need lane-aware variants.

// Lane-blocked dense product. `a` is lane-shared when a.cols() == b.rows()
// (e.g. the feature matrix under a lane-wide weight; must not need grad for
// lanes > 1 — a shared operand's gradient would sum over lanes, which no
// fused-replay consumer needs), otherwise lane-wide. lanes == 1 is exactly
// MatMul.
Var MatMulLanes(Var a, Var b, int lanes);

// Lane-blocked row-wise log-softmax: an independent stable log-softmax over
// every lane window of each row. lanes == 1 is exactly LogSoftmaxRows.
Var LogSoftmaxRowsLanes(Var logits, int lanes);

// Lane-blocked weighted NLL: the scalar output is the SUM over lanes of the
// narrow WeightedNll loss evaluated on that lane's window. Backward writes
// each lane's picked entries with the same per-entry arithmetic as the
// narrow op under a unit seed, so lane gradients are bitwise identical to
// `lanes` serial replays. lanes == 1 is exactly WeightedNll.
Var WeightedNllLanes(Var logp, const std::vector<int>& rows,
                     const std::vector<int>& labels,
                     const std::vector<double>& weights, double denom, int lanes);

// Copies columns [col0, col0 + width) of `a` into a new node (the lane
// extraction primitive for ops that stay per-lane, e.g. GAT attention).
// Backward adds the gradient back into the parent window, support-aware.
Var SliceCols(Var a, int col0, int width);

// ---- Elementwise / broadcast ----

Var Add(Var a, Var b);
Var Sub(Var a, Var b);
Var Mul(Var a, Var b);  // Hadamard
Var Div(Var a, Var b);  // elementwise a / b
Var Neg(Var a);
Var Scale(Var a, double s);
Var AddScalar(Var a, double s);
// Adds a 1 x c row vector to every row of an n x c matrix.
Var AddRowVec(Var a, Var row);
// Broadcasts a 1x1 scalar node to an (rows x cols) matrix.
Var ExpandScalar(Var s, int rows, int cols);

// ---- Nonlinearities ----

Var Relu(Var a);
Var LeakyRelu(Var a, double slope);
Var Elu(Var a, double alpha = 1.0);
Var Tanh(Var a);
Var Sigmoid(Var a);
Var Square(Var a);
Var Sqrt(Var a);   // clamped at 1e-12 for gradient stability
Var Abs(Var a);

// ---- Softmax / losses ----

Var LogSoftmaxRows(Var logits);
Var SoftmaxRows(Var logits);

// Weighted negative log-likelihood over a subset of rows:
//   loss = -(1 / denom) * sum_k weights[k] * logp(rows[k], labels[k])
// `logp` must be log-probabilities (e.g. from LogSoftmaxRows).
Var WeightedNll(Var logp, const std::vector<int>& rows, const std::vector<int>& labels,
                const std::vector<double>& weights, double denom);

// ---- Shape ops / reductions ----

Var GatherRows(Var a, const std::vector<int>& indices);
Var ConcatCols(const std::vector<Var>& parts);
Var SumAll(Var a);   // -> 1x1
Var MeanAll(Var a);  // -> 1x1
Var RowSums(Var a);  // n x c -> n x 1

// ---- Graph-specific fused ops ----

// Quadratic form Tr(Yᵀ L Y) for a fixed symmetric Laplacian L (1x1 output).
// Backward: dL/dY = 2 L Y. This is the InFoRM individual-fairness bias term.
Var LaplacianQuadratic(const std::shared_ptr<const la::CsrMatrix>& laplacian, Var y);

// Fused GAT attention: for every head h and destination i,
//   z_ij = attn_left(i,h) + attn_right(j,h),  e_ij = LeakyReLU(z_ij, slope)
//   alpha_ij = softmax_j(e_ij)  over j in N(i)
//   out_i[h-block] = sum_j alpha_ij * h_j[h-block]
// `h` is n x (heads*dim); attn_left / attn_right are n x heads.
Var EdgeSoftmaxAggregate(Var h, Var attn_left, Var attn_right,
                         const std::shared_ptr<const EdgeSet>& edges, int heads,
                         double leaky_slope);

}  // namespace ppfr::ag

#endif  // PPFR_AUTOGRAD_OPS_H_

#ifndef PPFR_AUTOGRAD_GRAD_CHECK_H_
#define PPFR_AUTOGRAD_GRAD_CHECK_H_

#include <functional>
#include <vector>

#include "autograd/tape.h"
#include "common/rng.h"

namespace ppfr::ag {

// Result of a numerical gradient verification.
struct GradCheckResult {
  double max_abs_error = 0.0;
  double max_rel_error = 0.0;
  int entries_checked = 0;
};

// Verifies analytic gradients of a scalar expression against central finite
// differences. `build` must construct the loss expression on the given tape
// from the *current* values of `params` (it is re-invoked after each
// perturbation). `samples_per_param` entries of every parameter are probed.
GradCheckResult GradCheck(const std::function<Var(Tape&)>& build,
                          const std::vector<Parameter*>& params, Rng* rng,
                          int samples_per_param = 12, double epsilon = 1e-5);

}  // namespace ppfr::ag

#endif  // PPFR_AUTOGRAD_GRAD_CHECK_H_

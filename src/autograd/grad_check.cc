#include "autograd/grad_check.h"

#include <algorithm>
#include <cmath>

namespace ppfr::ag {

GradCheckResult GradCheck(const std::function<Var(Tape&)>& build,
                          const std::vector<Parameter*>& params, Rng* rng,
                          int samples_per_param, double epsilon) {
  // Analytic gradients.
  for (Parameter* p : params) p->ZeroGrad();
  std::vector<la::Matrix> analytic;
  {
    Tape tape;
    Var loss = build(tape);
    tape.Backward(loss);
  }
  analytic.reserve(params.size());
  for (Parameter* p : params) analytic.push_back(p->grad);

  auto eval = [&]() {
    Tape tape;
    return build(tape).scalar();
  };

  GradCheckResult result;
  for (size_t pi = 0; pi < params.size(); ++pi) {
    Parameter* p = params[pi];
    const int64_t total = p->size();
    const int samples = static_cast<int>(std::min<int64_t>(samples_per_param, total));
    for (int s = 0; s < samples; ++s) {
      const int64_t idx = rng->UniformInt(total);
      double* cell = p->value.data() + idx;
      const double saved = *cell;
      *cell = saved + epsilon;
      const double f_plus = eval();
      *cell = saved - epsilon;
      const double f_minus = eval();
      *cell = saved;
      const double numeric = (f_plus - f_minus) / (2.0 * epsilon);
      const double exact = analytic[pi].data()[idx];
      const double abs_err = std::fabs(numeric - exact);
      const double denom = std::max({std::fabs(numeric), std::fabs(exact), 1e-8});
      result.max_abs_error = std::max(result.max_abs_error, abs_err);
      result.max_rel_error = std::max(result.max_rel_error, abs_err / denom);
      ++result.entries_checked;
    }
  }
  return result;
}

}  // namespace ppfr::ag

#include "fairness/bias_metric.h"

#include "graph/jaccard.h"

namespace ppfr::fairness {

SimilarityContext SimilarityContext::FromGraph(const graph::Graph& g) {
  SimilarityContext ctx;
  ctx.similarity = graph::JaccardSimilarity(g);
  ctx.laplacian =
      std::make_shared<la::CsrMatrix>(graph::SimilarityLaplacian(ctx.similarity));
  return ctx;
}

double RawBias(const la::Matrix& y, const la::CsrMatrix& laplacian) {
  PPFR_CHECK_EQ(y.rows(), laplacian.rows());
  const la::Matrix ly = laplacian.Multiply(y);
  return la::Dot(y, ly);
}

double Bias(const la::Matrix& y, const la::CsrMatrix& laplacian) {
  return RawBias(y, laplacian) / static_cast<double>(y.rows());
}

}  // namespace ppfr::fairness

#ifndef PPFR_FAIRNESS_BIAS_METRIC_H_
#define PPFR_FAIRNESS_BIAS_METRIC_H_

#include <memory>

#include "graph/graph.h"
#include "la/csr_matrix.h"
#include "la/matrix.h"

namespace ppfr::fairness {

// Precomputed Jaccard similarity S and its Laplacian L_S for one graph.
// The Laplacian is shared (the trainer's regulariser and the metric both
// hold references).
struct SimilarityContext {
  la::CsrMatrix similarity;
  std::shared_ptr<const la::CsrMatrix> laplacian;

  static SimilarityContext FromGraph(const graph::Graph& g);
};

// InFoRM individual-fairness bias Bias(Y, S) = Tr(Yᵀ L_S Y), divided by the
// node count so values are comparable across graph sizes. Lower is fairer.
double Bias(const la::Matrix& y, const la::CsrMatrix& laplacian);

// Unnormalised Tr(Yᵀ L_S Y) (the quantity the training regulariser uses).
double RawBias(const la::Matrix& y, const la::CsrMatrix& laplacian);

}  // namespace ppfr::fairness

#endif  // PPFR_FAIRNESS_BIAS_METRIC_H_

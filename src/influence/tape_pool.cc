#include "influence/tape_pool.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "influence/param_vector.h"

namespace ppfr::influence {

TapePool::TapePool(const Builder& builder, std::vector<ag::Parameter*> params,
                   int num_lanes)
    : builder_(builder), params_(std::move(params)), num_lanes_(num_lanes) {
  PPFR_CHECK_GE(num_lanes, 1);
  // One forward pass, built with the ACTIVE backend: its values are exactly
  // what a plain single-tape forward would produce, and after construction
  // the tape is only ever read (until a Rewarm replays it).
  tape_.set_accumulate_param_grads(false);
  output_ = builder_(tape_);
  PPFR_CHECK(output_.tape == &tape_);
  if (num_lanes > 1) pool_ = std::make_unique<ThreadPool>(num_lanes);
}

void TapePool::Rewarm() {
  tape_.BeginReplay();
  output_ = builder_(tape_);
  PPFR_CHECK(output_.tape == &tape_);
  // Close the replay here: the seeded backwards that follow run on worker
  // threads, which must never race on the tape's replay state.
  tape_.EndReplay();
}

void TapePool::RunLane(int seed_begin, int seed_end, const SeedFn& seed_fn,
                       std::vector<std::vector<double>>* grads) {
  // Worker-private state: a gradient arena for the shared tape, and a
  // single-threaded backend of the active kind so the shared ParallelBackend
  // pool is never entered concurrently.
  const std::unique_ptr<la::Backend> backend =
      la::MakeBackend(la::ActiveBackendKind(), /*num_threads=*/1);
  la::ThreadLocalBackendGuard backend_guard(backend.get());
  ag::GradArena arena(&tape_);
  ag::ArenaScope arena_scope(&arena);
  std::vector<int> rows;
  std::vector<int> cols;
  std::vector<double> values;
  for (int k = seed_begin; k < seed_end; ++k) {
    rows.clear();
    cols.clear();
    values.clear();
    seed_fn(k, &rows, &cols, &values);
    tape_.BackwardWithSparseSeed(output_, rows, cols, values);
    tape_.FlattenLeafGrads(params_, &(*grads)[static_cast<size_t>(k)]);
    tape_.ZeroDirtyNodeGrads();
  }
}

std::vector<std::vector<double>> TapePool::PerSeedGrads(int num_seeds,
                                                        const SeedFn& seed_fn) {
  PPFR_CHECK_GE(num_seeds, 0);
  std::vector<std::vector<double>> grads(static_cast<size_t>(num_seeds));
  if (num_seeds == 0) return grads;
  const int lanes = std::min<int>(num_lanes_, num_seeds);
  if (lanes == 1 || pool_ == nullptr) {
    RunLane(0, num_seeds, seed_fn, &grads);
    return grads;
  }
  // Contiguous, near-even seed ranges; each range is driven by exactly one
  // worker with its own arena, so no backward state is ever shared.
  pool_->ParallelFor(0, lanes, 1, [&](int64_t l0, int64_t l1) {
    for (int64_t l = l0; l < l1; ++l) {
      const int begin = static_cast<int>(l * num_seeds / lanes);
      const int end = static_cast<int>((l + 1) * num_seeds / lanes);
      RunLane(begin, end, seed_fn, &grads);
    }
  });
  return grads;
}

GradLanePool::GradLanePool(const LaneFactory& factory, int num_lanes) {
  PPFR_CHECK_GE(num_lanes, 1);
  lanes_.reserve(static_cast<size_t>(num_lanes));
  for (int l = 0; l < num_lanes; ++l) lanes_.push_back(factory());
  for (const GradLane& lane : lanes_) PPFR_CHECK_EQ(lane.width, 1);
  if (num_lanes > 1) pool_ = std::make_unique<ThreadPool>(num_lanes);
}

GradLanePool::GradLanePool(const WideLaneFactory& factory, int num_lanes, int width)
    : width_(width) {
  PPFR_CHECK_GE(num_lanes, 1);
  PPFR_CHECK_GE(width, 1);
  lanes_.reserve(static_cast<size_t>(num_lanes));
  for (int l = 0; l < num_lanes; ++l) {
    lanes_.push_back(factory(width));
    PPFR_CHECK_EQ(lanes_.back().width, width);
  }
  if (num_lanes > 1) pool_ = std::make_unique<ThreadPool>(num_lanes);
}

void GradLanePool::RunLane(int lane, int begin, int end,
                           const std::vector<std::vector<double>>& points,
                           std::vector<std::vector<double>>* grads) {
  // Same worker-private discipline as TapePool::RunLane: each lane replays
  // its own graph under a single-threaded backend of the active kind.
  const std::unique_ptr<la::Backend> backend =
      la::MakeBackend(la::ActiveBackendKind(), /*num_threads=*/1);
  la::ThreadLocalBackendGuard backend_guard(backend.get());
  GradLane& state = lanes_[static_cast<size_t>(lane)];
  for (int i = begin; i < end; ++i) {
    SetValues(state.params, points[static_cast<size_t>(i)]);
    (*grads)[static_cast<size_t>(i)] = state.graph->Grad();
  }
}

void GradLanePool::RunLaneFused(int lane, int chunk_begin, int chunk_end,
                                int kernel_threads,
                                const std::vector<std::vector<double>>& points,
                                std::vector<std::vector<double>>* grads) {
  // Unlike the narrow path, a fused sweep often has FEWER chunk workers than
  // cores (e.g. 16 probes at width 8 = 2 chunks), so the threads the workers
  // don't occupy are handed to each worker's private backend. Kernels are
  // bitwise invariant to their thread count, so this moves wall-clock only,
  // never bits.
  const std::unique_ptr<la::Backend> backend =
      la::MakeBackend(la::ActiveBackendKind(), std::max(1, kernel_threads));
  la::ThreadLocalBackendGuard backend_guard(backend.get());
  GradLane& state = lanes_[static_cast<size_t>(lane)];
  const int width = state.width;
  const int n = static_cast<int>(points.size());
  for (int c = chunk_begin; c < chunk_end; ++c) {
    const int p0 = c * width;
    const int count = std::min(width, n - p0);
    PPFR_CHECK_GE(count, 1);
    // Scatter: fused lane l of every WIDE parameter (rows x base_cols·width)
    // takes point p0+l's block, column window [l·base_cols, (l+1)·base_cols).
    // Short final chunks replicate their last point into the pad lanes —
    // lanes are arithmetically independent, so pad results are discarded
    // without ever influencing a real lane's bits.
    int64_t flat_dim = 0;  // narrow (per-point) flat size, accumulated below
    for (ag::Parameter* p : state.params) {
      la::Matrix& value = p->value;
      PPFR_CHECK_EQ(value.cols() % width, 0);
      const int cols = value.cols() / width;
      for (int l = 0; l < width; ++l) {
        const std::vector<double>& pt =
            points[static_cast<size_t>(p0 + std::min(l, count - 1))];
        for (int r = 0; r < value.rows(); ++r) {
          const double* src = pt.data() + flat_dim + static_cast<int64_t>(r) * cols;
          std::copy(src, src + cols, value.row(r) + static_cast<int64_t>(l) * cols);
        }
      }
      flat_dim += static_cast<int64_t>(value.rows()) * cols;
    }
    // One replay of the lane-wide graph evaluates all `count` gradients.
    const std::vector<double> wide = state.graph->Grad();
    PPFR_CHECK_EQ(static_cast<int64_t>(wide.size()), flat_dim * width);
    // De-interleave the wide flat gradient back into per-point order: wide
    // element (param i, row r, lane l, col c2) sits at
    //   width·off_i + r·cols_i·width + l·cols_i + c2,
    // the narrow destination at off_i + r·cols_i + c2.
    for (int l = 0; l < count; ++l) {
      std::vector<double>& g = (*grads)[static_cast<size_t>(p0 + l)];
      g.resize(static_cast<size_t>(flat_dim));
      int64_t off = 0;
      for (ag::Parameter* p : state.params) {
        const int cols = p->value.cols() / width;
        const double* base = wide.data() + off * width;
        for (int r = 0; r < p->value.rows(); ++r) {
          const double* src =
              base + (static_cast<int64_t>(r) * width + l) * cols;
          std::copy(src, src + cols, g.data() + off + static_cast<int64_t>(r) * cols);
        }
        off += static_cast<int64_t>(p->value.rows()) * cols;
      }
    }
  }
}

std::vector<std::vector<double>> GradLanePool::GradsAt(
    const std::vector<std::vector<double>>& points) {
  const int n = static_cast<int>(points.size());
  std::vector<std::vector<double>> grads(points.size());
  if (n == 0) return grads;
  if (width_ > 1) {
    // Two-level parallelism: `width_` fused lanes per replay × thread lanes
    // over chunks. The chunk grid depends only on width_, and each chunk is
    // self-contained, so any thread-lane count produces the same bits.
    const int chunks = (n + width_ - 1) / width_;
    const int lanes = std::min<int>(num_lanes(), chunks);
    const int kernel_threads =
        std::max(1, la::ActiveBackend().num_threads() / std::max(1, lanes));
    if (lanes == 1 || pool_ == nullptr) {
      RunLaneFused(0, 0, chunks, kernel_threads, points, &grads);
      return grads;
    }
    pool_->ParallelFor(0, lanes, 1, [&](int64_t l0, int64_t l1) {
      for (int64_t l = l0; l < l1; ++l) {
        const int begin = static_cast<int>(l * chunks / lanes);
        const int end = static_cast<int>((l + 1) * chunks / lanes);
        RunLaneFused(static_cast<int>(l), begin, end, kernel_threads, points,
                     &grads);
      }
    });
    return grads;
  }
  const int lanes = std::min<int>(num_lanes(), n);
  if (lanes == 1 || pool_ == nullptr) {
    RunLane(0, 0, n, points, &grads);
    return grads;
  }
  pool_->ParallelFor(0, lanes, 1, [&](int64_t l0, int64_t l1) {
    for (int64_t l = l0; l < l1; ++l) {
      const int begin = static_cast<int>(l * n / lanes);
      const int end = static_cast<int>((l + 1) * n / lanes);
      RunLane(static_cast<int>(l), begin, end, points, &grads);
    }
  });
  return grads;
}

TapePool* ReplayCache::GetOrCreateTapePool(
    const std::string& key, const std::function<std::unique_ptr<TapePool>()>& make) {
  std::unique_ptr<TapePool>& slot = tape_pools_[key];
  if (slot == nullptr) {
    slot = make();
  } else {
    // Warm hit: refresh the recorded forward at the parameters' current
    // values. Replay recycles every node buffer, so this is allocation-free.
    slot->Rewarm();
  }
  return slot.get();
}

GradLanePool* ReplayCache::GetOrCreateGradLanes(
    const std::string& key,
    const std::function<std::unique_ptr<GradLanePool>()>& make) {
  std::unique_ptr<GradLanePool>& slot = grad_lane_pools_[key];
  if (slot == nullptr) slot = make();
  return slot.get();
}

ReusableLossGraph::ReusableLossGraph(Builder builder,
                                     std::vector<ag::Parameter*> params)
    : builder_(std::move(builder)), params_(std::move(params)) {
  tape_.set_accumulate_param_grads(false);
}

std::vector<double> ReusableLossGraph::Grad() {
  if (recorded_) tape_.BeginReplay();
  ag::Var loss = builder_(tape_);
  PPFR_CHECK(loss.tape == &tape_);
  tape_.Backward(loss);
  recorded_ = true;
  std::vector<double> out;
  tape_.FlattenLeafGrads(params_, &out);
  return out;
}

}  // namespace ppfr::influence

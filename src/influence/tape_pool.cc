#include "influence/tape_pool.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "influence/param_vector.h"

namespace ppfr::influence {

TapePool::TapePool(const Builder& builder, std::vector<ag::Parameter*> params,
                   int num_lanes)
    : params_(std::move(params)), num_lanes_(num_lanes) {
  PPFR_CHECK_GE(num_lanes, 1);
  // One forward pass, built with the ACTIVE backend: its values are exactly
  // what a plain single-tape forward would produce, and after construction
  // the tape is only ever read.
  tape_.set_accumulate_param_grads(false);
  output_ = builder(tape_);
  PPFR_CHECK(output_.tape == &tape_);
  if (num_lanes > 1) pool_ = std::make_unique<ThreadPool>(num_lanes);
}

void TapePool::RunLane(int seed_begin, int seed_end, const SeedFn& seed_fn,
                       std::vector<std::vector<double>>* grads) {
  // Worker-private state: a gradient arena for the shared tape, and a
  // single-threaded backend of the active kind so the shared ParallelBackend
  // pool is never entered concurrently.
  const std::unique_ptr<la::Backend> backend =
      la::MakeBackend(la::ActiveBackendKind(), /*num_threads=*/1);
  la::ThreadLocalBackendGuard backend_guard(backend.get());
  ag::GradArena arena(&tape_);
  ag::ArenaScope arena_scope(&arena);
  std::vector<int> rows;
  std::vector<int> cols;
  std::vector<double> values;
  for (int k = seed_begin; k < seed_end; ++k) {
    rows.clear();
    cols.clear();
    values.clear();
    seed_fn(k, &rows, &cols, &values);
    tape_.BackwardWithSparseSeed(output_, rows, cols, values);
    tape_.FlattenLeafGrads(params_, &(*grads)[static_cast<size_t>(k)]);
    tape_.ZeroDirtyNodeGrads();
  }
}

std::vector<std::vector<double>> TapePool::PerSeedGrads(int num_seeds,
                                                        const SeedFn& seed_fn) {
  PPFR_CHECK_GE(num_seeds, 0);
  std::vector<std::vector<double>> grads(static_cast<size_t>(num_seeds));
  if (num_seeds == 0) return grads;
  const int lanes = std::min<int>(num_lanes_, num_seeds);
  if (lanes == 1 || pool_ == nullptr) {
    RunLane(0, num_seeds, seed_fn, &grads);
    return grads;
  }
  // Contiguous, near-even seed ranges; each range is driven by exactly one
  // worker with its own arena, so no backward state is ever shared.
  pool_->ParallelFor(0, lanes, 1, [&](int64_t l0, int64_t l1) {
    for (int64_t l = l0; l < l1; ++l) {
      const int begin = static_cast<int>(l * num_seeds / lanes);
      const int end = static_cast<int>((l + 1) * num_seeds / lanes);
      RunLane(begin, end, seed_fn, &grads);
    }
  });
  return grads;
}

GradLanePool::GradLanePool(const LaneFactory& factory, int num_lanes) {
  PPFR_CHECK_GE(num_lanes, 1);
  lanes_.reserve(static_cast<size_t>(num_lanes));
  for (int l = 0; l < num_lanes; ++l) lanes_.push_back(factory());
  if (num_lanes > 1) pool_ = std::make_unique<ThreadPool>(num_lanes);
}

void GradLanePool::RunLane(int lane, int begin, int end,
                           const std::vector<std::vector<double>>& points,
                           std::vector<std::vector<double>>* grads) {
  // Same worker-private discipline as TapePool::RunLane: each lane replays
  // its own graph under a single-threaded backend of the active kind.
  const std::unique_ptr<la::Backend> backend =
      la::MakeBackend(la::ActiveBackendKind(), /*num_threads=*/1);
  la::ThreadLocalBackendGuard backend_guard(backend.get());
  GradLane& state = lanes_[static_cast<size_t>(lane)];
  for (int i = begin; i < end; ++i) {
    SetValues(state.params, points[static_cast<size_t>(i)]);
    (*grads)[static_cast<size_t>(i)] = state.graph->Grad();
  }
}

std::vector<std::vector<double>> GradLanePool::GradsAt(
    const std::vector<std::vector<double>>& points) {
  const int n = static_cast<int>(points.size());
  std::vector<std::vector<double>> grads(points.size());
  if (n == 0) return grads;
  const int lanes = std::min<int>(num_lanes(), n);
  if (lanes == 1 || pool_ == nullptr) {
    RunLane(0, 0, n, points, &grads);
    return grads;
  }
  pool_->ParallelFor(0, lanes, 1, [&](int64_t l0, int64_t l1) {
    for (int64_t l = l0; l < l1; ++l) {
      const int begin = static_cast<int>(l * n / lanes);
      const int end = static_cast<int>((l + 1) * n / lanes);
      RunLane(static_cast<int>(l), begin, end, points, &grads);
    }
  });
  return grads;
}

ReusableLossGraph::ReusableLossGraph(Builder builder,
                                     std::vector<ag::Parameter*> params)
    : builder_(std::move(builder)), params_(std::move(params)) {
  tape_.set_accumulate_param_grads(false);
}

std::vector<double> ReusableLossGraph::Grad() {
  if (recorded_) tape_.BeginReplay();
  ag::Var loss = builder_(tape_);
  PPFR_CHECK(loss.tape == &tape_);
  tape_.Backward(loss);
  recorded_ = true;
  std::vector<double> out;
  tape_.FlattenLeafGrads(params_, &out);
  return out;
}

}  // namespace ppfr::influence

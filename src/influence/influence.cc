#include "influence/influence.h"

#include <algorithm>

#include "fairness/bias_metric.h"
#include "influence/param_vector.h"
#include "la/backend.h"
#include "privacy/risk_metric.h"

namespace ppfr::influence {

InfluenceCalculator::InfluenceCalculator(nn::GnnModel* model,
                                         const nn::GraphContext& ctx,
                                         std::vector<int> train_nodes,
                                         const std::vector<int>& labels,
                                         const InfluenceConfig& config)
    : model_(model), ctx_(ctx), train_nodes_(std::move(train_nodes)), config_(config) {
  PPFR_CHECK(!train_nodes_.empty());
  params_ = model_->Params();
  train_labels_.reserve(train_nodes_.size());
  for (int v : train_nodes_) {
    PPFR_CHECK_GE(v, 0);
    PPFR_CHECK_LT(v, static_cast<int>(labels.size()));
    train_labels_.push_back(labels[v]);
  }
}

std::vector<double> InfluenceCalculator::TrainingLossGrad() {
  if (config_.reuse_grad_tape) {
    if (train_grad_graph_ == nullptr) {
      train_grad_graph_ = std::make_unique<ReusableLossGraph>(
          [this](ag::Tape& tape) {
            ag::Var logits = model_->Forward(tape, ctx_, nn::ForwardOptions{});
            ag::Var logp = ag::LogSoftmaxRows(logits);
            const std::vector<double> ones(train_nodes_.size(), 1.0);
            return ag::WeightedNll(logp, train_nodes_, train_labels_, ones,
                                   static_cast<double>(train_nodes_.size()));
          },
          params_);
    }
    return train_grad_graph_->Grad();
  }
  for (ag::Parameter* p : params_) p->ZeroGrad();
  ag::Tape tape;
  ag::Var logits = model_->Forward(tape, ctx_, nn::ForwardOptions{});
  ag::Var logp = ag::LogSoftmaxRows(logits);
  const std::vector<double> ones(train_nodes_.size(), 1.0);
  ag::Var loss = ag::WeightedNll(logp, train_nodes_, train_labels_, ones,
                                 static_cast<double>(train_nodes_.size()));
  tape.Backward(loss);
  return FlattenGrads(params_);
}

std::vector<double> InfluenceCalculator::FunctionGrad(const FunctionBuilder& build_f) {
  for (ag::Parameter* p : params_) p->ZeroGrad();
  ag::Tape tape;
  ag::Var logits = model_->Forward(tape, ctx_, nn::ForwardOptions{});
  ag::Var f = build_f(tape, logits);
  tape.Backward(f);
  return FlattenGrads(params_);
}

const std::vector<std::vector<double>>& InfluenceCalculator::PerNodeLossGrads() {
  if (!per_node_grads_.empty()) return per_node_grads_;
  per_node_grads_ = config_.serial_reference_per_node ? PerNodeLossGradsSerialReference()
                                                      : PerNodeLossGradsPooled();
  return per_node_grads_;
}

std::vector<std::vector<double>> InfluenceCalculator::PerNodeLossGradsPooled() {
  int lanes = config_.tape_pool_lanes;
  if (lanes <= 0) lanes = std::min(la::ActiveBackend().num_threads(), 8);
  lanes = std::max(1, std::min<int>(lanes, static_cast<int>(train_nodes_.size())));
  TapePool pool(
      [this](ag::Tape& tape) {
        ag::Var logits = model_->Forward(tape, ctx_, nn::ForwardOptions{});
        return ag::LogSoftmaxRows(logits);
      },
      params_, lanes);
  // Seed dL_v/dlogp = -1 at (v, label_v) — exactly the gradient the serial
  // reference's single-node WeightedNll writes, so the paths stay bitwise
  // identical without materialising a loss node per seed.
  return pool.PerSeedGrads(
      static_cast<int>(train_nodes_.size()),
      [this](int k, std::vector<int>* rows, std::vector<int>* cols,
             std::vector<double>* values) {
        rows->push_back(train_nodes_[static_cast<size_t>(k)]);
        cols->push_back(train_labels_[static_cast<size_t>(k)]);
        values->push_back(-1.0);
      });
}

// The seed implementation, preserved verbatim as the parity oracle and the
// "before" side of bench_influence_engine: one growing tape, a full
// ZeroAllGrads sweep and a Parameter::grad round-trip per node.
std::vector<std::vector<double>>
InfluenceCalculator::PerNodeLossGradsSerialReference() {
  ag::Tape tape;
  ag::Var logits = model_->Forward(tape, ctx_, nn::ForwardOptions{});
  ag::Var logp = ag::LogSoftmaxRows(logits);
  la::Matrix seed(1, 1);
  seed(0, 0) = 1.0;
  std::vector<std::vector<double>> grads;
  grads.reserve(train_nodes_.size());
  for (size_t k = 0; k < train_nodes_.size(); ++k) {
    for (ag::Parameter* p : params_) p->ZeroGrad();
    tape.ZeroAllGrads();
    ag::Var loss_v = ag::WeightedNll(logp, {train_nodes_[k]}, {train_labels_[k]},
                                     {1.0}, 1.0);
    tape.BackwardWithSeed(loss_v, seed);
    grads.push_back(FlattenGrads(params_));
  }
  return grads;
}

std::vector<double> InfluenceCalculator::InfluenceOnFunction(
    const FunctionBuilder& build_f) {
  const std::vector<double> grad_f = FunctionGrad(build_f);
  const GradFn train_grad = [this] { return TrainingLossGrad(); };
  const CgResult solve = ConjugateGradientSolve(params_, train_grad, grad_f, config_.cg);

  // I_f(w_v) = -s_fᵀ ∇θL_v with s_f = H⁻¹∇θf.
  const auto& node_grads = PerNodeLossGrads();
  std::vector<double> influence(train_nodes_.size());
  for (size_t k = 0; k < node_grads.size(); ++k) {
    influence[k] = -VecDot(solve.x, node_grads[k]);
  }
  return influence;
}

std::vector<double> InfluenceCalculator::InfluenceOnBias(
    const std::shared_ptr<const la::CsrMatrix>& laplacian) {
  return InfluenceOnFunction([laplacian](ag::Tape& tape, ag::Var logits) {
    (void)tape;
    ag::Var probs = ag::SoftmaxRows(logits);
    return ag::LaplacianQuadratic(laplacian, probs);
  });
}

std::vector<double> InfluenceCalculator::InfluenceOnRisk(
    const privacy::PairSample& pairs) {
  return InfluenceOnFunction([&pairs](ag::Tape& tape, ag::Var logits) {
    return privacy::RiskSurrogate(tape, logits, pairs);
  });
}

std::vector<double> InfluenceCalculator::InfluenceOnUtility() {
  return InfluenceOnFunction([this](ag::Tape& tape, ag::Var logits) {
    (void)tape;
    ag::Var logp = ag::LogSoftmaxRows(logits);
    const std::vector<double> ones(train_nodes_.size(), 1.0);
    return ag::WeightedNll(logp, train_nodes_, train_labels_, ones,
                           static_cast<double>(train_nodes_.size()));
  });
}

}  // namespace ppfr::influence

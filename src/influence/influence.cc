#include "influence/influence.h"

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <string>
#include <utility>

#include "fairness/bias_metric.h"
#include "influence/param_vector.h"
#include "la/backend.h"
#include "privacy/risk_metric.h"

namespace ppfr::influence {

InfluenceCalculator::InfluenceCalculator(nn::GnnModel* model,
                                         const nn::GraphContext& ctx,
                                         std::vector<int> train_nodes,
                                         const std::vector<int>& labels,
                                         const InfluenceConfig& config)
    : model_(model),
      ctx_(ctx),
      train_nodes_(std::move(train_nodes)),
      labels_(labels),
      config_(config) {
  PPFR_CHECK(!train_nodes_.empty());
  params_ = model_->Params();
  train_labels_.reserve(train_nodes_.size());
  for (int v : train_nodes_) {
    PPFR_CHECK_GE(v, 0);
    PPFR_CHECK_LT(v, static_cast<int>(labels.size()));
    train_labels_.push_back(labels[v]);
  }
}

int ResolveCgBlock(int configured) {
  if (configured > 0) return configured;
  if (const char* env = std::getenv("PPFR_CG_BLOCK")) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  return 8;
}

int ResolveReplayLanes(int configured) {
  if (configured > 0) return configured;
  if (const char* env = std::getenv("PPFR_REPLAY_LANES")) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  return 8;
}

int InfluenceCalculator::ResolvedCgBlock() const {
  return ResolveCgBlock(config_.cg_block);
}

int InfluenceCalculator::ResolvedReplayLanes() const {
  return ResolveReplayLanes(config_.replay_lanes);
}

int InfluenceCalculator::ResolvedLanes(int num_items) const {
  int lanes = config_.tape_pool_lanes;
  if (lanes <= 0) lanes = std::min(la::ActiveBackend().num_threads(), 8);
  return std::max(1, std::min(lanes, num_items));
}

std::vector<double> InfluenceCalculator::TrainingLossGrad() {
  if (config_.reuse_grad_tape) {
    if (train_grad_graph_ == nullptr) {
      train_grad_graph_ = std::make_unique<ReusableLossGraph>(
          [this](ag::Tape& tape) {
            ag::Var logits = model_->Forward(tape, ctx_, nn::ForwardOptions{});
            ag::Var logp = ag::LogSoftmaxRows(logits);
            const std::vector<double> ones(train_nodes_.size(), 1.0);
            return ag::WeightedNll(logp, train_nodes_, train_labels_, ones,
                                   static_cast<double>(train_nodes_.size()));
          },
          params_);
    }
    return train_grad_graph_->Grad();
  }
  for (ag::Parameter* p : params_) p->ZeroGrad();
  ag::Tape tape;
  ag::Var logits = model_->Forward(tape, ctx_, nn::ForwardOptions{});
  ag::Var logp = ag::LogSoftmaxRows(logits);
  const std::vector<double> ones(train_nodes_.size(), 1.0);
  ag::Var loss = ag::WeightedNll(logp, train_nodes_, train_labels_, ones,
                                 static_cast<double>(train_nodes_.size()));
  tape.Backward(loss);
  return FlattenGrads(params_);
}

std::vector<double> InfluenceCalculator::FunctionGrad(const FunctionBuilder& build_f) {
  for (ag::Parameter* p : params_) p->ZeroGrad();
  ag::Tape tape;
  ag::Var logits = model_->Forward(tape, ctx_, nn::ForwardOptions{});
  ag::Var f = build_f(tape, logits);
  tape.Backward(f);
  return FlattenGrads(params_);
}

const std::vector<std::vector<double>>& InfluenceCalculator::PerNodeLossGrads() {
  if (!per_node_grads_.empty()) return per_node_grads_;
  per_node_grads_ = config_.serial_reference_per_node ? PerNodeLossGradsSerialReference()
                                                      : PerNodeLossGradsPooled();
  return per_node_grads_;
}

TapePool* InfluenceCalculator::SharedForwardPool() {
  if (forward_pool_ != nullptr) return forward_pool_;
  // Lane count saturates at the backend's thread budget; PerSeedGrads clamps
  // to the seed count per call, and results are lane-count-invariant bit for
  // bit, so one pool serves sweeps of every size.
  const int lanes = ResolvedLanes(std::numeric_limits<int>::max());
  // The builder captures the model and context by pointer (never `this`): a
  // cache-owned pool outlives this calculator and rewarms against the same
  // model object from a later one.
  nn::GnnModel* model = model_;
  const nn::GraphContext* ctx = &ctx_;
  const TapePool::Builder builder = [model, ctx](ag::Tape& tape) {
    ag::Var logits = model->Forward(tape, *ctx, nn::ForwardOptions{});
    return ag::LogSoftmaxRows(logits);
  };
  if (config_.replay_cache != nullptr) {
    const std::string key =
        "fwd:" + std::to_string(reinterpret_cast<std::uintptr_t>(model_)) + ":" +
        std::to_string(lanes);
    forward_pool_ = config_.replay_cache->GetOrCreateTapePool(
        key, [&] { return std::make_unique<TapePool>(builder, params_, lanes); });
  } else {
    owned_forward_pool_ = std::make_unique<TapePool>(builder, params_, lanes);
    forward_pool_ = owned_forward_pool_.get();
  }
  return forward_pool_;
}

std::vector<std::vector<double>> InfluenceCalculator::PerNodeLossGradsPooled() {
  // Seed dL_v/dlogp = -1 at (v, label_v) — exactly the gradient the serial
  // reference's single-node WeightedNll writes, so the paths stay bitwise
  // identical without materialising a loss node per seed.
  return SharedForwardPool()->PerSeedGrads(
      static_cast<int>(train_nodes_.size()),
      [this](int k, std::vector<int>* rows, std::vector<int>* cols,
             std::vector<double>* values) {
        rows->push_back(train_nodes_[static_cast<size_t>(k)]);
        cols->push_back(train_labels_[static_cast<size_t>(k)]);
        values->push_back(-1.0);
      });
}

// The seed implementation, preserved verbatim as the parity oracle and the
// "before" side of bench_influence_engine: one growing tape, a full
// ZeroAllGrads sweep and a Parameter::grad round-trip per node.
std::vector<std::vector<double>>
InfluenceCalculator::PerNodeLossGradsSerialReference() {
  ag::Tape tape;
  ag::Var logits = model_->Forward(tape, ctx_, nn::ForwardOptions{});
  ag::Var logp = ag::LogSoftmaxRows(logits);
  la::Matrix seed(1, 1);
  seed(0, 0) = 1.0;
  std::vector<std::vector<double>> grads;
  grads.reserve(train_nodes_.size());
  for (size_t k = 0; k < train_nodes_.size(); ++k) {
    for (ag::Parameter* p : params_) p->ZeroGrad();
    tape.ZeroAllGrads();
    ag::Var loss_v = ag::WeightedNll(logp, {train_nodes_[k]}, {train_labels_[k]},
                                     {1.0}, 1.0);
    tape.BackwardWithSeed(loss_v, seed);
    grads.push_back(FlattenGrads(params_));
  }
  return grads;
}

BatchGradFn InfluenceCalculator::BatchTrainGrad() {
  if (grad_lane_pool_ == nullptr) {
    // Every lane owns a full model clone, WIDENED to `width` parameter-column
    // blocks: one replay of its lane-wide loss graph evaluates the gradient
    // at `width` probe points through wide BLAS-3 passes. Probe evaluation
    // never touches the real parameters. Thread-lane count follows
    // tape_pool_lanes over the CHUNK count (a chunk = one fused replay); the
    // per-point gradients are invariant bit for bit to both the thread-lane
    // count and the fused width (each fused lane's arithmetic IS the serial
    // graph's — see autograd/ops.cc lane ops).
    // Central differencing never produces more than 2·cg_block probes per
    // call, so a wider pool would only ever run pad lanes: clamp the fused
    // width to the probe budget (replay_lanes = 8 at cg_block = 1 → width 2).
    const int width =
        std::min(ResolvedReplayLanes(), std::max(1, 2 * ResolvedCgBlock()));
    const int chunks =
        std::max(1, (2 * ResolvedCgBlock() + width - 1) / width);
    // A wide clone's tapes are `width`× a narrow clone's, so chunk workers
    // beyond the backend's thread budget buy no concurrency and multiply the
    // working set past cache — clamp to the threads that actually exist.
    // Results are lane-count invariant bit for bit, so this only moves time.
    const int lanes = std::max(
        1, std::min(ResolvedLanes(chunks), la::ActiveBackend().num_threads()));
    // Captures are by value / stable pointer (never `this`): a cache-owned
    // pool outlives this calculator.
    nn::GnnModel* model = model_;
    const nn::GraphContext* ctx = &ctx_;
    const GradLanePool::WideLaneFactory factory =
        [model, ctx, nodes = train_nodes_, node_labels = train_labels_](int w) {
          GradLane lane;
          std::unique_ptr<nn::GnnModel> clone = model->Clone();
          nn::GnnModel* m = clone.get();
          nn::WidenModelParams(m, w);
          lane.width = w;
          lane.params = m->Params();
          lane.graph = std::make_unique<ReusableLossGraph>(
              [m, ctx, nodes, node_labels, w](ag::Tape& tape) {
                nn::ForwardOptions options;
                options.replay_lanes = w;
                ag::Var logits = m->Forward(tape, *ctx, options);
                ag::Var logp = ag::LogSoftmaxRowsLanes(logits, w);
                const std::vector<double> ones(nodes.size(), 1.0);
                return ag::WeightedNllLanes(logp, nodes, node_labels, ones,
                                            static_cast<double>(nodes.size()), w);
              },
              lane.params);
          lane.owner = std::shared_ptr<void>(std::move(clone));
          return lane;
        };
    if (config_.replay_cache != nullptr) {
      const std::string key =
          "lanes:" + std::to_string(reinterpret_cast<std::uintptr_t>(model_)) +
          ":" + std::to_string(lanes) + "x" + std::to_string(width);
      grad_lane_pool_ = config_.replay_cache->GetOrCreateGradLanes(key, [&] {
        return std::make_unique<GradLanePool>(factory, lanes, width);
      });
    } else {
      owned_grad_lane_pool_ =
          std::make_unique<GradLanePool>(factory, lanes, width);
      grad_lane_pool_ = owned_grad_lane_pool_.get();
    }
  }
  return [this](const std::vector<std::vector<double>>& points) {
    return grad_lane_pool_->GradsAt(points);
  };
}

MultiVector InfluenceCalculator::SolveRhsBlock(const MultiVector& b) {
  const int block = ResolvedCgBlock();
  const GradFn train_grad = [this] { return TrainingLossGrad(); };
  const BatchGradFn batch_grad = BatchTrainGrad();
  MultiVector solution(b.dim(), b.k());
  for (int begin = 0; begin < b.k(); begin += block) {
    const int end = std::min(begin + block, b.k());
    std::vector<int> cols(static_cast<size_t>(end - begin));
    for (int j = begin; j < end; ++j) cols[static_cast<size_t>(j - begin)] = j;
    const BlockCgResult chunk = BlockConjugateGradientSolve(
        params_, train_grad, batch_grad, b.SelectColumns(cols), config_.cg);
    for (int j = begin; j < end; ++j) {
      solution.SetColumn(j, chunk.x.Column(j - begin));
      if (chunk.converged[static_cast<size_t>(j - begin)]) ++block_stats_.converged_rhs;
    }
    ++block_stats_.solves;
    block_stats_.block_iterations += chunk.stats.block_iterations;
    block_stats_.grad_evals += chunk.stats.grad_evals;
    block_stats_.total_rhs += end - begin;
    block_stats_.algebra_seconds += chunk.stats.algebra_seconds;
    block_stats_.algebra_flops += chunk.stats.algebra_flops;
  }
  return solution;
}

std::vector<std::vector<double>> InfluenceCalculator::ContractAgainstNodeGrads(
    const MultiVector& s) {
  // I(i, v) = -s_iᵀ ∇θL_v: one (num_f × num_train) GEMM-T against the cached
  // node-gradient block instead of num_f · num_train separate VDots.
  const MultiVector node_grads = MultiVector::FromColumns(PerNodeLossGrads());
  const la::Matrix prod = BlockGram(s, node_grads);
  std::vector<std::vector<double>> influence(
      static_cast<size_t>(s.k()),
      std::vector<double>(train_nodes_.size(), 0.0));
  for (int i = 0; i < s.k(); ++i) {
    for (size_t v = 0; v < train_nodes_.size(); ++v) {
      influence[static_cast<size_t>(i)][v] = -prod(i, static_cast<int>(v));
    }
  }
  return influence;
}

std::vector<std::vector<double>> InfluenceCalculator::InfluenceOnFunctions(
    const std::vector<FunctionBuilder>& builders) {
  if (builders.empty()) return {};
  std::vector<std::vector<double>> rhs;
  rhs.reserve(builders.size());
  for (const FunctionBuilder& build_f : builders) rhs.push_back(FunctionGrad(build_f));
  return ContractAgainstNodeGrads(SolveRhsBlock(MultiVector::FromColumns(rhs)));
}

std::vector<std::vector<double>> InfluenceCalculator::InfluenceOnNodeLosses(
    const std::vector<int>& target_nodes) {
  if (target_nodes.empty()) return {};
  for (int t : target_nodes) {
    PPFR_CHECK_GE(t, 0);
    PPFR_CHECK_LT(t, static_cast<int>(labels_.size()));
  }
  // All target-node loss gradients ∇θL_t from the SAME shared forward pass
  // (and pool) as the per-train-node sweep — previously a second identical
  // TapePool was built and warmed here.
  const std::vector<std::vector<double>> rhs = SharedForwardPool()->PerSeedGrads(
      static_cast<int>(target_nodes.size()),
      [this, &target_nodes](int k, std::vector<int>* rows, std::vector<int>* cols,
                            std::vector<double>* values) {
        const int t = target_nodes[static_cast<size_t>(k)];
        rows->push_back(t);
        cols->push_back(labels_[static_cast<size_t>(t)]);
        values->push_back(-1.0);
      });
  return ContractAgainstNodeGrads(SolveRhsBlock(MultiVector::FromColumns(rhs)));
}

std::vector<double> InfluenceCalculator::InfluenceOnFunction(
    const FunctionBuilder& build_f) {
  const std::vector<double> grad_f = FunctionGrad(build_f);
  const GradFn train_grad = [this] { return TrainingLossGrad(); };
  const CgResult solve = ConjugateGradientSolve(params_, train_grad, grad_f, config_.cg);

  // I_f(w_v) = -s_fᵀ ∇θL_v with s_f = H⁻¹∇θf. The contraction runs through
  // the same GEMM-T kernel as the batched path (not a VDot per node), so a
  // cg_block = 1 batched call is bitwise identical to this oracle on every
  // backend — the reduction order matches by construction.
  return ContractAgainstNodeGrads(MultiVector::FromColumns({solve.x}))[0];
}

FunctionBuilder InfluenceCalculator::BiasFunction(
    const std::shared_ptr<const la::CsrMatrix>& laplacian) {
  return [laplacian](ag::Tape& tape, ag::Var logits) {
    (void)tape;
    ag::Var probs = ag::SoftmaxRows(logits);
    return ag::LaplacianQuadratic(laplacian, probs);
  };
}

FunctionBuilder InfluenceCalculator::RiskFunction(const privacy::PairSample& pairs) {
  return [pairs](ag::Tape& tape, ag::Var logits) {
    return privacy::RiskSurrogate(tape, logits, pairs);
  };
}

FunctionBuilder InfluenceCalculator::UtilityFunction() const {
  const std::vector<int> nodes = train_nodes_;
  const std::vector<int> node_labels = train_labels_;
  return [nodes, node_labels](ag::Tape& tape, ag::Var logits) {
    (void)tape;
    ag::Var logp = ag::LogSoftmaxRows(logits);
    const std::vector<double> ones(nodes.size(), 1.0);
    return ag::WeightedNll(logp, nodes, node_labels, ones,
                           static_cast<double>(nodes.size()));
  };
}

std::vector<double> InfluenceCalculator::InfluenceOnBias(
    const std::shared_ptr<const la::CsrMatrix>& laplacian) {
  return InfluenceOnFunction(BiasFunction(laplacian));
}

std::vector<double> InfluenceCalculator::InfluenceOnRisk(
    const privacy::PairSample& pairs) {
  return InfluenceOnFunction(RiskFunction(pairs));
}

std::vector<double> InfluenceCalculator::InfluenceOnUtility() {
  return InfluenceOnFunction(UtilityFunction());
}

}  // namespace ppfr::influence

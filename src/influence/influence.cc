#include "influence/influence.h"

#include "fairness/bias_metric.h"
#include "influence/param_vector.h"
#include "privacy/risk_metric.h"

namespace ppfr::influence {

InfluenceCalculator::InfluenceCalculator(nn::GnnModel* model,
                                         const nn::GraphContext& ctx,
                                         std::vector<int> train_nodes,
                                         const std::vector<int>& labels,
                                         const InfluenceConfig& config)
    : model_(model), ctx_(ctx), train_nodes_(std::move(train_nodes)), config_(config) {
  PPFR_CHECK(!train_nodes_.empty());
  params_ = model_->Params();
  train_labels_.reserve(train_nodes_.size());
  for (int v : train_nodes_) {
    PPFR_CHECK_GE(v, 0);
    PPFR_CHECK_LT(v, static_cast<int>(labels.size()));
    train_labels_.push_back(labels[v]);
  }
}

std::vector<double> InfluenceCalculator::TrainingLossGrad() {
  for (ag::Parameter* p : params_) p->ZeroGrad();
  ag::Tape tape;
  ag::Var logits = model_->Forward(tape, ctx_, nn::ForwardOptions{});
  ag::Var logp = ag::LogSoftmaxRows(logits);
  const std::vector<double> ones(train_nodes_.size(), 1.0);
  ag::Var loss = ag::WeightedNll(logp, train_nodes_, train_labels_, ones,
                                 static_cast<double>(train_nodes_.size()));
  tape.Backward(loss);
  return FlattenGrads(params_);
}

std::vector<double> InfluenceCalculator::FunctionGrad(const FunctionBuilder& build_f) {
  for (ag::Parameter* p : params_) p->ZeroGrad();
  ag::Tape tape;
  ag::Var logits = model_->Forward(tape, ctx_, nn::ForwardOptions{});
  ag::Var f = build_f(tape, logits);
  tape.Backward(f);
  return FlattenGrads(params_);
}

const std::vector<std::vector<double>>& InfluenceCalculator::PerNodeLossGrads() {
  if (!per_node_grads_.empty()) return per_node_grads_;
  // One forward pass; per node, reseed the backward from the loss node.
  ag::Tape tape;
  ag::Var logits = model_->Forward(tape, ctx_, nn::ForwardOptions{});
  ag::Var logp = ag::LogSoftmaxRows(logits);
  la::Matrix seed(1, 1);
  seed(0, 0) = 1.0;
  per_node_grads_.reserve(train_nodes_.size());
  for (size_t k = 0; k < train_nodes_.size(); ++k) {
    for (ag::Parameter* p : params_) p->ZeroGrad();
    tape.ZeroAllGrads();
    ag::Var loss_v = ag::WeightedNll(logp, {train_nodes_[k]}, {train_labels_[k]},
                                     {1.0}, 1.0);
    tape.BackwardWithSeed(loss_v, seed);
    per_node_grads_.push_back(FlattenGrads(params_));
  }
  return per_node_grads_;
}

std::vector<double> InfluenceCalculator::InfluenceOnFunction(
    const FunctionBuilder& build_f) {
  const std::vector<double> grad_f = FunctionGrad(build_f);
  const GradFn train_grad = [this] { return TrainingLossGrad(); };
  const CgResult solve = ConjugateGradientSolve(params_, train_grad, grad_f, config_.cg);

  // I_f(w_v) = -s_fᵀ ∇θL_v with s_f = H⁻¹∇θf.
  const auto& node_grads = PerNodeLossGrads();
  std::vector<double> influence(train_nodes_.size());
  for (size_t k = 0; k < node_grads.size(); ++k) {
    influence[k] = -VecDot(solve.x, node_grads[k]);
  }
  return influence;
}

std::vector<double> InfluenceCalculator::InfluenceOnBias(
    const std::shared_ptr<const la::CsrMatrix>& laplacian) {
  return InfluenceOnFunction([laplacian](ag::Tape& tape, ag::Var logits) {
    (void)tape;
    ag::Var probs = ag::SoftmaxRows(logits);
    return ag::LaplacianQuadratic(laplacian, probs);
  });
}

std::vector<double> InfluenceCalculator::InfluenceOnRisk(
    const privacy::PairSample& pairs) {
  return InfluenceOnFunction([&pairs](ag::Tape& tape, ag::Var logits) {
    return privacy::RiskSurrogate(tape, logits, pairs);
  });
}

std::vector<double> InfluenceCalculator::InfluenceOnUtility() {
  return InfluenceOnFunction([this](ag::Tape& tape, ag::Var logits) {
    (void)tape;
    ag::Var logp = ag::LogSoftmaxRows(logits);
    const std::vector<double> ones(train_nodes_.size(), 1.0);
    return ag::WeightedNll(logp, train_nodes_, train_labels_, ones,
                           static_cast<double>(train_nodes_.size()));
  });
}

}  // namespace ppfr::influence

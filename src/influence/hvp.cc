#include "influence/hvp.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.h"
#include "common/recoverable.h"
#include "common/stopwatch.h"
#include "la/backend.h"

namespace ppfr::influence {

std::vector<double> HessianVectorProductWithNorm(
    const std::vector<ag::Parameter*>& params, const GradFn& grad_fn,
    const std::vector<double>& v, double norm, double step) {
  if (norm == 0.0) return std::vector<double>(v.size(), 0.0);

  const std::vector<double> theta = FlattenValues(params);
  PPFR_CHECK_EQ(theta.size(), v.size());

  std::vector<double> theta_shifted = theta;
  const double r = step / norm;
  VecAxpy(r, v, &theta_shifted);
  SetValues(params, theta_shifted);
  std::vector<double> g_plus = grad_fn();

  theta_shifted = theta;
  VecAxpy(-r, v, &theta_shifted);
  SetValues(params, theta_shifted);
  const std::vector<double> g_minus = grad_fn();

  SetValues(params, theta);  // restore

  for (size_t i = 0; i < g_plus.size(); ++i) {
    g_plus[i] = (g_plus[i] - g_minus[i]) / (2.0 * r);
  }
  return g_plus;
}

std::vector<double> HessianVectorProduct(const std::vector<ag::Parameter*>& params,
                                         const GradFn& grad_fn,
                                         const std::vector<double>& v, double step) {
  return HessianVectorProductWithNorm(params, grad_fn, v, VecNorm(v), step);
}

MultiVector BatchedHessianVectorProduct(const std::vector<double>& theta,
                                        const BatchGradFn& batch_grad,
                                        const MultiVector& v,
                                        const std::vector<double>& col_norms_sq,
                                        double step) {
  const int k = v.k();
  PPFR_CHECK_EQ(static_cast<int>(col_norms_sq.size()), k);
  MultiVector hv(v.dim(), k);
  if (k == 0) return hv;
  PPFR_CHECK_EQ(static_cast<int64_t>(theta.size()), v.dim());

  // Probe points θ ± (step/‖v_j‖)·v_j for every nonzero column, gathered into
  // ONE batch_grad call — the tape replay cost is per probe point, never per
  // column, which is what lets a GradLanePool fan the whole block out.
  std::vector<std::vector<double>> points;
  std::vector<int> active;
  std::vector<double> steps;
  points.reserve(2 * static_cast<size_t>(k));
  for (int j = 0; j < k; ++j) {
    const double norm = std::sqrt(col_norms_sq[static_cast<size_t>(j)]);
    if (norm == 0.0) continue;  // zero direction -> zero HVP column
    const double r = step / norm;
    std::vector<double> plus = theta;
    la::ActiveBackend().VAxpy(r, v.col(j), plus.data(), v.dim());
    std::vector<double> minus = theta;
    la::ActiveBackend().VAxpy(-r, v.col(j), minus.data(), v.dim());
    points.push_back(std::move(plus));
    points.push_back(std::move(minus));
    active.push_back(j);
    steps.push_back(r);
  }
  if (active.empty()) return hv;

  const std::vector<std::vector<double>> grads = batch_grad(points);
  PPFR_CHECK_EQ(grads.size(), points.size());
  for (size_t idx = 0; idx < active.size(); ++idx) {
    const std::vector<double>& g_plus = grads[2 * idx];
    const std::vector<double>& g_minus = grads[2 * idx + 1];
    PPFR_CHECK_EQ(static_cast<int64_t>(g_plus.size()), v.dim());
    PPFR_CHECK_EQ(static_cast<int64_t>(g_minus.size()), v.dim());
    const double r = steps[idx];
    double* out = hv.col(active[idx]);
    for (int64_t i = 0; i < v.dim(); ++i) {
      out[i] = (g_plus[static_cast<size_t>(i)] - g_minus[static_cast<size_t>(i)]) /
               (2.0 * r);
    }
  }
  return hv;
}

namespace {

// The CG recurrence over an abstract damped matvec; the public single-RHS
// entry point wraps the finite-difference HVP into it. `matvec(v, norm)`
// receives ‖v‖ precomputed by the fused updates (bitwise equal to
// sqrt(VecDot(v, v))), so the HVP's normalisation costs no extra pass.
using DampedMatVec =
    std::function<std::vector<double>(const std::vector<double>& v, double norm)>;

CgResult CgCore(const DampedMatVec& matvec, const std::vector<double>& b,
                const CgOptions& options) {
  const size_t n = b.size();
  CgResult result;
  result.x.assign(n, 0.0);
  std::vector<double> r = b;  // residual (x0 = 0)
  std::vector<double> p = r;
  double rs_old = VecDot(r, r);
  double rs_cur = rs_old;
  double p_norm_sq = rs_old;  // p = b initially, so ‖p‖² = bᵀb
  const double b_norm = std::max(std::sqrt(rs_old), 1e-30);

  for (int it = 0; it < options.max_iterations; ++it) {
    result.iterations = it + 1;
    const std::vector<double> ap = matvec(p, std::sqrt(p_norm_sq));
    const double p_ap = VecDot(p, ap);
    if (p_ap <= 0.0) break;  // numerical loss of positive-definiteness
    const double alpha = rs_old / p_ap;
    VecAxpy(alpha, p, &result.x);
    // Fused r -= α·Ap and rs_new = rᵀr — one pass over r instead of three.
    const double rs_new = VecAxpyDot(-alpha, ap, &r);
    rs_cur = rs_new;
    if (std::sqrt(rs_new) / b_norm < options.tolerance) break;
    const double beta = rs_new / rs_old;
    // Fused p = r + β·p and ‖p‖² (feeds the next HVP's normalisation).
    p_norm_sq = VecDotAxpy(beta, r, &p);
    rs_old = rs_new;
  }
  result.residual_norm = std::sqrt(rs_cur);
  return result;
}

// Cholesky factorisation of the k×k Gram matrix S = PᵀAP (lower triangle
// only — S is symmetric up to roundoff). A failing pivot j means direction j
// is not numerically positive definite against the preceding ones: the block
// is rank-deficient there (e.g. near-parallel RHS gradients), or the damped
// Hessian has negative curvature along it — the block analogue of the
// single-RHS p_ap <= 0 exit. The block loop drops that one column and keeps
// going; `bad_pivot` reports which.
bool CholeskyFactor(const la::Matrix& s, la::Matrix* l, int* bad_pivot = nullptr) {
  const int k = s.rows();
  PPFR_CHECK_EQ(s.cols(), k);
  *l = la::Matrix(k, k);
  for (int j = 0; j < k; ++j) {
    double d = s(j, j);
    for (int c = 0; c < j; ++c) d -= (*l)(j, c) * (*l)(j, c);
    if (!(d > 0.0) || d <= 1e-13 * std::fabs(s(j, j))) {
      if (bad_pivot != nullptr) *bad_pivot = j;
      return false;
    }
    const double root = std::sqrt(d);
    (*l)(j, j) = root;
    for (int i = j + 1; i < k; ++i) {
      double v = s(i, j);
      for (int c = 0; c < j; ++c) v -= (*l)(i, c) * (*l)(j, c);
      (*l)(i, j) = v / root;
    }
  }
  return true;
}

// Solves (L·Lᵀ) · out = rhs column by column given the Cholesky factor L.
la::Matrix CholeskySolve(const la::Matrix& l, const la::Matrix& rhs) {
  const int k = l.rows();
  PPFR_CHECK_EQ(rhs.rows(), k);
  la::Matrix out = rhs;
  for (int j = 0; j < rhs.cols(); ++j) {
    for (int row = 0; row < k; ++row) {  // forward substitution
      double v = out(row, j);
      for (int c = 0; c < row; ++c) v -= l(row, c) * out(c, j);
      out(row, j) = v / l(row, row);
    }
    for (int row = k - 1; row >= 0; --row) {  // back substitution
      double v = out(row, j);
      for (int c = row + 1; c < k; ++c) v -= l(c, row) * out(c, j);
      out(row, j) = v / l(row, row);
    }
  }
  return out;
}

la::Matrix Submatrix(const la::Matrix& m, const std::vector<int>& keep) {
  la::Matrix out(static_cast<int>(keep.size()), static_cast<int>(keep.size()));
  for (size_t i = 0; i < keep.size(); ++i) {
    for (size_t j = 0; j < keep.size(); ++j) {
      out(static_cast<int>(i), static_cast<int>(j)) = m(keep[i], keep[j]);
    }
  }
  return out;
}

}  // namespace

CgResult ConjugateGradientSolve(const std::vector<ag::Parameter*>& params,
                                const GradFn& grad_fn, const std::vector<double>& b,
                                const CgOptions& options) {
  PPFR_CHECK_GT(options.damping, 0.0);
  auto matvec = [&](const std::vector<double>& v, double norm) {
    std::vector<double> hv =
        HessianVectorProductWithNorm(params, grad_fn, v, norm, options.hvp_step);
    VecAxpy(options.damping, v, &hv);
    return hv;
  };
  return CgCore(matvec, b, options);
}

BlockCgResult BlockConjugateGradientSolve(const std::vector<ag::Parameter*>& params,
                                          const GradFn& grad_fn,
                                          const BatchGradFn& batch_grad,
                                          const MultiVector& b,
                                          const CgOptions& options) {
  PPFR_CHECK_GT(options.damping, 0.0);
  const int k = b.k();
  const int64_t dim = b.dim();
  BlockCgResult result;
  result.x = MultiVector(dim, k);
  result.residual_norm.assign(static_cast<size_t>(k), 0.0);
  result.iterations.assign(static_cast<size_t>(k), 0);
  result.converged.assign(static_cast<size_t>(k), false);
  if (k == 0) return result;

  // Pre-pass: zero columns are trivially solved, and bitwise-duplicate
  // columns are solved once through a representative (this also keeps the
  // Gram matrices nonsingular when a caller batches identical RHSs).
  const std::vector<double> b_norms_sq = ColumnNormsSq(b);
  std::vector<int> rep_of(static_cast<size_t>(k), -1);
  std::vector<int> unique;
  for (int j = 0; j < k; ++j) {
    if (b_norms_sq[static_cast<size_t>(j)] == 0.0) {
      result.converged[static_cast<size_t>(j)] = true;  // x_j = 0 exactly
      continue;
    }
    for (int u : unique) {
      if (std::equal(b.col(j), b.col(j) + dim, b.col(u))) {
        rep_of[static_cast<size_t>(j)] = u;
        break;
      }
    }
    if (rep_of[static_cast<size_t>(j)] < 0) {
      rep_of[static_cast<size_t>(j)] = j;
      unique.push_back(j);
    }
  }
  if (unique.empty()) return result;

  // One distinct RHS: the block recurrence degenerates to plain CG, so run
  // the oracle itself — this is what makes k = 1 bitwise-equal by
  // construction rather than by numerical accident.
  if (unique.size() == 1) {
    const CgResult single =
        ConjugateGradientSolve(params, grad_fn, b.Column(unique[0]), options);
    result.stats.block_iterations = single.iterations;
    result.stats.grad_evals = 2 * single.iterations;
    const double b_norm =
        std::max(std::sqrt(b_norms_sq[static_cast<size_t>(unique[0])]), 1e-30);
    for (int j = 0; j < k; ++j) {
      if (rep_of[static_cast<size_t>(j)] < 0) continue;
      result.x.SetColumn(j, single.x);
      result.residual_norm[static_cast<size_t>(j)] = single.residual_norm;
      result.iterations[static_cast<size_t>(j)] = single.iterations;
      result.converged[static_cast<size_t>(j)] =
          single.residual_norm / b_norm < options.tolerance;
    }
    return result;
  }

  // Compacted block state over the active (not yet converged) unique
  // columns. `active[j]` maps compacted position j back to the original
  // column index.
  const std::vector<double> theta = FlattenValues(params);
  PPFR_CHECK_EQ(static_cast<int64_t>(theta.size()), dim);
  std::vector<int> active = unique;
  MultiVector x_act(dim, static_cast<int>(active.size()));  // zeros
  MultiVector r_act = b.SelectColumns(active);
  MultiVector p_act = r_act;
  // R starts as the selected B columns, whose squared norms were already
  // computed bitwise in the pre-pass — copy them instead of re-running the
  // dot pass (which would also recompute norms for columns the dedup screen
  // already retired).
  std::vector<double> res_norms_sq(active.size());
  for (size_t j = 0; j < active.size(); ++j) {
    res_norms_sq[j] = b_norms_sq[static_cast<size_t>(active[j])];
  }
  std::vector<double> p_norms_sq = res_norms_sq;  // P = R initially
  std::vector<double> b_norm_of(static_cast<size_t>(k), 1e-30);
  for (int j : unique) {
    b_norm_of[static_cast<size_t>(j)] =
        std::max(std::sqrt(b_norms_sq[static_cast<size_t>(j)]), 1e-30);
  }

  Stopwatch total_watch;
  auto finish_column = [&](int pos, int iters, bool converged) {
    const int orig = active[static_cast<size_t>(pos)];
    result.x.SetColumn(orig, x_act.Column(pos));
    result.residual_norm[static_cast<size_t>(orig)] =
        std::sqrt(res_norms_sq[static_cast<size_t>(pos)]);
    result.iterations[static_cast<size_t>(orig)] = iters;
    result.converged[static_cast<size_t>(orig)] = converged;
  };

  Stopwatch algebra_watch;
  double algebra_seconds = 0.0;
  double algebra_flops = 0.0;
  auto timed = [&](auto&& fn) {
    algebra_watch = Stopwatch();
    auto out = fn();
    algebra_seconds += algebra_watch.ElapsedSeconds();
    return out;
  };

  // The direction block P is decoupled from the residual block R: dependent
  // directions are SCREENED OUT of P (failing Cholesky pivots), while every
  // residual column keeps advancing through the shared independent
  // directions — near-parallel RHS columns (per-node loss gradients cluster
  // by community) cost rank(P) probe pairs per iteration, not k. Only when
  // the whole direction block collapses — no direction with positive
  // curvature survives, the block analogue of the single-RHS p_ap <= 0
  // exit — are the remaining columns frozen at their current iterate and
  // finished after the loop through the single-RHS oracle on their residual
  // equations.
  struct DeferredColumn {
    int orig;               // original column index
    std::vector<double> x;  // iterate at freeze time
    std::vector<double> r;  // residual at freeze time
    int advanced;           // block iterations that updated this column
  };
  std::vector<DeferredColumn> deferred;
  auto defer_all_active = [&](int advanced) {
    for (int j = 0; j < static_cast<int>(active.size()); ++j) {
      deferred.push_back({active[static_cast<size_t>(j)], x_act.Column(j),
                          r_act.Column(j), advanced});
    }
    active.clear();
  };

  // Factors the direction Gram `g` in place, screening the failing pivot's
  // direction out of `p` (and `ap`, when already computed) until the
  // factorisation succeeds or no direction is left. A failing pivot means
  // direction `bad` is numerically dependent on the preceding ones — or, for
  // g = PᵀAP, has non-positive curvature under the damped Hessian.
  auto factor_screening = [&](la::Matrix* g, la::Matrix* chol, MultiVector* ap) {
    int bad = -1;
    while (p_act.k() > 0 && !CholeskyFactor(*g, chol, &bad)) {
      std::vector<int> keep;
      for (int j = 0; j < p_act.k(); ++j) {
        if (j != bad) keep.push_back(j);
      }
      p_act = p_act.SelectColumns(keep);
      if (ap != nullptr) *ap = ap->SelectColumns(keep);
      std::vector<double> next_norms(keep.size());
      for (size_t j = 0; j < keep.size(); ++j) {
        next_norms[j] = p_norms_sq[static_cast<size_t>(keep[j])];
      }
      p_norms_sq = std::move(next_norms);
      *g = Submatrix(*g, keep);
    }
  };

  int iter = 0;
  while (iter < options.max_iterations && !active.empty()) {
    ++iter;

    // Rank-screen the direction block on its own Gram PᵀP BEFORE paying any
    // probe gradients: dependent directions are free to drop here, and the
    // batched HVP below only covers the independent ones.
    {
      const int kp = p_act.k();
      la::Matrix pp = timed([&] { return BlockGram(p_act, p_act); });
      algebra_flops += 2.0 * kp * kp * static_cast<double>(dim);
      la::Matrix pp_chol;
      factor_screening(&pp, &pp_chol, nullptr);
    }
    if (p_act.k() == 0) {
      defer_all_active(iter - 1);
      break;
    }

    // AP = (H + λI)·P, one batched HVP for the independent directions.
    MultiVector ap_act = BatchedHessianVectorProduct(theta, batch_grad, p_act,
                                                     p_norms_sq, options.hvp_step);
    result.stats.grad_evals += 2 * p_act.k();
    la::ActiveBackend().VAxpy(options.damping, p_act.mat().data(),
                              ap_act.mat().data(), p_act.mat().size());

    // S = PᵀAP. A failing pivot here is non-positive curvature along an
    // already-independent direction; screen it out too (its probes are spent,
    // which is why the rank screen above runs first).
    la::Matrix s = timed([&] { return BlockGram(p_act, ap_act); });
    algebra_flops += 2.0 * p_act.k() * p_act.k() * static_cast<double>(dim);
    la::Matrix chol;
    factor_screening(&s, &chol, &ap_act);
    if (p_act.k() == 0) {
      defer_all_active(iter - 1);
      break;
    }
    const int kd = p_act.k();                        // independent directions
    const int kc = static_cast<int>(active.size());  // residual columns

    // α = S⁻¹ (PᵀR) is kd×kc; X += P·α; R -= AP·α (fused with the
    // per-column residual norms the deflation check needs).
    la::Matrix pr = timed([&] { return BlockGram(p_act, r_act); });
    const la::Matrix alpha = CholeskySolve(chol, pr);
    timed([&] {
      BlockAccumulate(alpha, p_act, 1.0, &x_act);
      return 0;
    });
    res_norms_sq = timed([&] { return BlockAccumulateNormsSq(alpha, ap_act, &r_act); });
    algebra_flops += (6.0 * kd * kc + 2.0 * kc) * static_cast<double>(dim);

    // Deflate converged columns out of the residual block. The directions
    // are shared, so only the residual-side state compacts.
    std::vector<int> keep;
    for (int j = 0; j < kc; ++j) {
      const int orig = active[static_cast<size_t>(j)];
      const double rel = std::sqrt(res_norms_sq[static_cast<size_t>(j)]) /
                         b_norm_of[static_cast<size_t>(orig)];
      if (rel < options.tolerance) {
        finish_column(j, iter, /*converged=*/true);
      } else {
        keep.push_back(j);
      }
    }
    if (static_cast<int>(keep.size()) < kc) {
      std::vector<int> next_active;
      std::vector<double> next_res(keep.size());
      for (size_t j = 0; j < keep.size(); ++j) {
        next_active.push_back(active[static_cast<size_t>(keep[j])]);
        next_res[j] = res_norms_sq[static_cast<size_t>(keep[j])];
      }
      x_act = x_act.SelectColumns(keep);
      r_act = r_act.SelectColumns(keep);
      active = std::move(next_active);
      res_norms_sq = std::move(next_res);
    }
    if (active.empty()) break;

    // β = -S⁻¹ (APᵀ R_new) is kd per surviving residual column;
    // P = R + P·β A-orthogonalises one regrown direction per residual
    // against the shared P (dependent ones fall out at the next screen),
    // fused with the ‖p_j‖² the next batched HVP needs.
    const int kr = static_cast<int>(active.size());
    la::Matrix t = timed([&] { return BlockGram(ap_act, r_act); });
    la::Matrix beta = CholeskySolve(chol, t);
    for (int64_t i = 0; i < beta.size(); ++i) beta.data()[i] = -beta.data()[i];
    p_norms_sq = timed([&] { return BlockDirectionUpdate(beta, r_act, &p_act); });
    algebra_flops += (4.0 * kd * kr + 2.0 * kr) * static_cast<double>(dim);
  }

  // Whatever is still active hit max_iterations: report it unconverged with
  // its current iterate, like the single-RHS early exits.
  for (int j = 0; j < static_cast<int>(active.size()); ++j) {
    finish_column(j, iter, /*converged=*/false);
  }

  if (!deferred.empty()) {
    // Columns frozen when the direction block collapsed finish through the
    // single-RHS oracle on their residual equations (H + λI)e_j = r_j,
    // x_j += e_j — deterministic, and convergence is still judged against the
    // ORIGINAL ‖b_j‖. A column frozen before any block update (x_j = 0,
    // r_j = b_j) reproduces the oracle on its original system bitwise.
    auto fallback_matvec = [&](const std::vector<double>& v, double norm) {
      std::vector<double> hv =
          HessianVectorProductWithNorm(params, grad_fn, v, norm, options.hvp_step);
      VecAxpy(options.damping, v, &hv);
      return hv;
    };
    for (const DeferredColumn& col : deferred) {
      const CgResult fix = CgCore(fallback_matvec, col.r, options);
      // The fallback is the last line of defence: if even the single-RHS
      // oracle diverges on this residual system, the Hessian itself is
      // numerically broken for this cell's data — recoverable (other cells
      // are fine), but not transient (the same system diverges every time).
      if (!std::isfinite(fix.residual_norm)) {
        throw RecoverableError(
            "block-CG total collapse: non-finite fallback residual");
      }
      result.stats.grad_evals += 2 * fix.iterations;
      std::vector<double> x_col = col.x;
      VecAxpy(1.0, fix.x, &x_col);
      result.x.SetColumn(col.orig, x_col);
      result.residual_norm[static_cast<size_t>(col.orig)] = fix.residual_norm;
      result.iterations[static_cast<size_t>(col.orig)] = col.advanced + fix.iterations;
      result.converged[static_cast<size_t>(col.orig)] =
          fix.residual_norm / b_norm_of[static_cast<size_t>(col.orig)] <
          options.tolerance;
    }
  }
  result.stats.block_iterations = iter;
  result.stats.algebra_seconds = algebra_seconds;
  result.stats.algebra_flops = algebra_flops;
  (void)total_watch;

  // Copy representative solutions into their duplicate columns.
  for (int j = 0; j < k; ++j) {
    const int rep = rep_of[static_cast<size_t>(j)];
    if (rep < 0 || rep == j) continue;
    result.x.SetColumn(j, result.x.Column(rep));
    result.residual_norm[static_cast<size_t>(j)] =
        result.residual_norm[static_cast<size_t>(rep)];
    result.iterations[static_cast<size_t>(j)] =
        result.iterations[static_cast<size_t>(rep)];
    result.converged[static_cast<size_t>(j)] =
        result.converged[static_cast<size_t>(rep)];
  }
  return result;
}

}  // namespace ppfr::influence

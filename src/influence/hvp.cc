#include "influence/hvp.h"

#include <cmath>

#include "common/check.h"
#include "influence/param_vector.h"

namespace ppfr::influence {

std::vector<double> HessianVectorProduct(const std::vector<ag::Parameter*>& params,
                                         const GradFn& grad_fn,
                                         const std::vector<double>& v, double step) {
  const double norm = VecNorm(v);
  if (norm == 0.0) return std::vector<double>(v.size(), 0.0);

  const std::vector<double> theta = FlattenValues(params);
  PPFR_CHECK_EQ(theta.size(), v.size());

  std::vector<double> theta_shifted = theta;
  const double r = step / norm;
  VecAxpy(r, v, &theta_shifted);
  SetValues(params, theta_shifted);
  std::vector<double> g_plus = grad_fn();

  theta_shifted = theta;
  VecAxpy(-r, v, &theta_shifted);
  SetValues(params, theta_shifted);
  const std::vector<double> g_minus = grad_fn();

  SetValues(params, theta);  // restore

  for (size_t i = 0; i < g_plus.size(); ++i) {
    g_plus[i] = (g_plus[i] - g_minus[i]) / (2.0 * r);
  }
  return g_plus;
}

CgResult ConjugateGradientSolve(const std::vector<ag::Parameter*>& params,
                                const GradFn& grad_fn, const std::vector<double>& b,
                                const CgOptions& options) {
  PPFR_CHECK_GT(options.damping, 0.0);
  const size_t n = b.size();
  auto matvec = [&](const std::vector<double>& v) {
    std::vector<double> hv = HessianVectorProduct(params, grad_fn, v, options.hvp_step);
    VecAxpy(options.damping, v, &hv);
    return hv;
  };

  CgResult result;
  result.x.assign(n, 0.0);
  std::vector<double> r = b;  // residual (x0 = 0)
  std::vector<double> p = r;
  double rs_old = VecDot(r, r);
  const double b_norm = std::max(VecNorm(b), 1e-30);

  for (int it = 0; it < options.max_iterations; ++it) {
    result.iterations = it + 1;
    const std::vector<double> ap = matvec(p);
    const double p_ap = VecDot(p, ap);
    if (p_ap <= 0.0) break;  // numerical loss of positive-definiteness
    const double alpha = rs_old / p_ap;
    VecAxpy(alpha, p, &result.x);
    VecAxpy(-alpha, ap, &r);
    const double rs_new = VecDot(r, r);
    if (std::sqrt(rs_new) / b_norm < options.tolerance) break;
    const double beta = rs_new / rs_old;
    for (size_t i = 0; i < n; ++i) p[i] = r[i] + beta * p[i];
    rs_old = rs_new;
  }
  result.residual_norm = VecNorm(r);
  return result;
}

}  // namespace ppfr::influence

#include "influence/frontier.h"

#include <algorithm>
#include <unordered_set>

#include "common/check.h"

namespace ppfr::influence {
namespace {

// {t} ∪ N(t) ∪ N²(t), sorted — the dense-row support of a 2-layer seeded
// backward from t. Direct neighbour-of-neighbour enumeration: cheaper than a
// full BfsHops vector per target on big graphs.
std::vector<int> TwoHopSupport(const graph::Graph& g, int t) {
  std::unordered_set<int> support{t};
  for (int u : g.Neighbors(t)) {
    support.insert(u);
    for (int w : g.Neighbors(u)) support.insert(w);
  }
  std::vector<int> out(support.begin(), support.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

FrontierPartition PartitionByTwoHopSupport(const graph::Graph& g,
                                           std::vector<int> targets,
                                           int64_t support_budget) {
  PPFR_CHECK_GT(support_budget, 0);
  std::sort(targets.begin(), targets.end());
  targets.erase(std::unique(targets.begin(), targets.end()), targets.end());

  FrontierPartition partition;
  std::vector<int> chunk_targets;
  std::unordered_set<int> chunk_support;
  auto flush = [&] {
    if (chunk_targets.empty()) return;
    FrontierChunk chunk;
    chunk.targets = std::move(chunk_targets);
    chunk.support.assign(chunk_support.begin(), chunk_support.end());
    std::sort(chunk.support.begin(), chunk.support.end());
    partition.chunks.push_back(std::move(chunk));
    chunk_targets.clear();
    chunk_support.clear();
  };

  for (int t : targets) {
    const std::vector<int> support = TwoHopSupport(g, t);
    // Would admitting t blow the budget? Count only the new nodes.
    int64_t added = 0;
    for (int v : support) {
      if (!chunk_support.count(v)) ++added;
    }
    if (!chunk_targets.empty() &&
        static_cast<int64_t>(chunk_support.size()) + added > support_budget) {
      flush();
    }
    // A hub whose own support exceeds the budget still gets a singleton
    // chunk — correctness over locality.
    chunk_targets.push_back(t);
    chunk_support.insert(support.begin(), support.end());
  }
  flush();
  return partition;
}

FrontierSweepResult RunFrontierSweep(InfluenceCalculator* calc,
                                     const FrontierPartition& partition,
                                     const FrontierSweepOptions& options) {
  PPFR_CHECK(calc != nullptr);
  PPFR_CHECK_GE(options.shard_index, 0);
  PPFR_CHECK_GT(options.shard_count, 0);
  PPFR_CHECK_LT(options.shard_index, options.shard_count);

  FrontierSweepResult result;
  for (size_t k = 0; k < partition.chunks.size(); ++k) {
    if (static_cast<int>(k % static_cast<size_t>(options.shard_count)) !=
        options.shard_index) {
      continue;
    }
    const FrontierChunk& chunk = partition.chunks[k];
    std::vector<std::vector<double>> rows =
        calc->InfluenceOnNodeLosses(chunk.targets);
    PPFR_CHECK_EQ(rows.size(), chunk.targets.size());
    result.targets.insert(result.targets.end(), chunk.targets.begin(),
                          chunk.targets.end());
    for (auto& row : rows) result.influence.push_back(std::move(row));
    ++result.chunks_run;
  }
  return result;
}

}  // namespace ppfr::influence

#ifndef PPFR_INFLUENCE_FRONTIER_H_
#define PPFR_INFLUENCE_FRONTIER_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "influence/influence.h"

namespace ppfr::influence {

// One chunk of a frontier-partitioned influence sweep: a set of target nodes
// whose union of 2-hop supports (the rows their seeded backwards can touch
// through a 2-layer GNN) stays within the partition's budget, so the chunk's
// shared-forward gradient gathers stay slab-local.
struct FrontierChunk {
  std::vector<int> targets;  // ascending node ids
  std::vector<int> support;  // sorted union of the targets' 2-hop supports
};

struct FrontierPartition {
  std::vector<FrontierChunk> chunks;
};

// Deterministically partitions `targets` into 2-hop-support-local chunks:
// targets are visited in ascending id order and greedily accumulated while
// the union support stays <= support_budget nodes; a target whose own
// support exceeds the budget (a hub) still gets a singleton chunk rather
// than being dropped. Chunks and their target lists depend only on
// (graph, targets, support_budget) — never on thread count or backend.
FrontierPartition PartitionByTwoHopSupport(const graph::Graph& g,
                                           std::vector<int> targets,
                                           int64_t support_budget);

struct FrontierSweepOptions {
  // Fleet sharding (--shard=i/N): chunk k is owned by shard k % shard_count.
  // Sharding at chunk (not target) granularity keeps each shard's work
  // support-local and the union over shards an exact cover of the targets.
  int shard_index = 0;
  int shard_count = 1;
};

struct FrontierSweepResult {
  std::vector<int> targets;  // concatenation of the owned chunks' targets
  // influence[i][v] = I_{L_targets[i]}(w_v), rows aligned with `targets`.
  std::vector<std::vector<double>> influence;
  int chunks_run = 0;
};

// Runs the per-node influence sweep chunk by chunk: each owned chunk issues
// exactly one InfluenceOnNodeLosses(chunk.targets) call, so every row is
// BITWISE identical to the existing per-node path invoked on that chunk's
// target list — the partition changes scheduling and locality, not a single
// float. (Across DIFFERENT chunkings of the same targets: at cg_block = 1
// the solves are chunk-invariant, so rows coincide bitwise under the
// reference backend and to contraction roundoff — a few ULPs, from the final
// GEMM-T's width-dependent kernel choice — under tiling backends; at larger
// cg_block they agree to solver tolerance. The tests pin these.)
FrontierSweepResult RunFrontierSweep(InfluenceCalculator* calc,
                                     const FrontierPartition& partition,
                                     const FrontierSweepOptions& options);

}  // namespace ppfr::influence

#endif  // PPFR_INFLUENCE_FRONTIER_H_

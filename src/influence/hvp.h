#ifndef PPFR_INFLUENCE_HVP_H_
#define PPFR_INFLUENCE_HVP_H_

#include <functional>
#include <vector>

#include "autograd/tape.h"
#include "influence/param_vector.h"

namespace ppfr::influence {

// Computes the flat training-loss gradient ∇θL at the CURRENT parameter
// values (implementations run a forward/backward pass and flatten).
using GradFn = std::function<std::vector<double>()>;

// Evaluates the flat training-loss gradient at each of the given ABSOLUTE
// parameter points, returning one gradient per point (same order). Must
// leave the model's parameters as it found them. Implementations replay a
// recorded loss tape once per point — serially, or fanned across a
// GradLanePool of model clones (see influence/tape_pool.h); either way each
// point's gradient is independent of the batching, so results are bitwise
// identical for any lane count.
using BatchGradFn = std::function<std::vector<std::vector<double>>(
    const std::vector<std::vector<double>>& points)>;

// Hessian-vector product H·v by central finite differences of the gradient:
//   H v ≈ [∇L(θ + r v̂) − ∇L(θ − r v̂)] / (2 r) · ‖v‖,  v̂ = v/‖v‖
// Restores θ afterwards. Zero vector in, zero vector out.
std::vector<double> HessianVectorProduct(const std::vector<ag::Parameter*>& params,
                                         const GradFn& grad_fn,
                                         const std::vector<double>& v,
                                         double step = 1e-4);

// As above with ‖v‖ supplied by the caller (the CG loop already has it from
// the fused direction update, saving a dot pass per iteration). `norm` must
// equal the bits of sqrt(VecDot(v, v)).
std::vector<double> HessianVectorProductWithNorm(
    const std::vector<ag::Parameter*>& params, const GradFn& grad_fn,
    const std::vector<double>& v, double norm, double step = 1e-4);

// Batched central-difference HVP: column j of the result is H·v_j, with all
// probe-point gradients gathered into ONE BatchGradFn call (2 probe points
// per nonzero column, one tape replay per probe point — never per column).
// `col_norms_sq[j]` must equal the bits of VecDot(v_j, v_j); zero columns
// yield zero columns. `theta` is the expansion point (the solver's fixed θ*).
MultiVector BatchedHessianVectorProduct(const std::vector<double>& theta,
                                        const BatchGradFn& batch_grad,
                                        const MultiVector& v,
                                        const std::vector<double>& col_norms_sq,
                                        double step = 1e-4);

struct CgOptions {
  double damping = 0.01;  // solves (H + damping·I) x = b
  int max_iterations = 40;
  double tolerance = 1e-8;  // on the relative residual
  double hvp_step = 1e-4;
};

struct CgResult {
  std::vector<double> x;
  double residual_norm = 0.0;
  int iterations = 0;
};

// Damped conjugate-gradient solve of (H + λI) x = b with implicit H via
// finite-difference HVPs. This is the standard Koh & Liang inverse-HVP
// machinery; damping keeps the system positive definite when the model is
// not at an exact minimum. This single-RHS path is the bitwise oracle the
// block solver is gated against; its axpy+dot pairs run through the fused
// Backend::VAxpyDot / Backend::VDotAxpy kernels (bitwise equal to the
// unfused sequences, in fewer memory passes).
CgResult ConjugateGradientSolve(const std::vector<ag::Parameter*>& params,
                                const GradFn& grad_fn, const std::vector<double>& b,
                                const CgOptions& options);

// Block-solve instrumentation, surfaced into BENCH_influence.json.
struct BlockCgStats {
  int block_iterations = 0;  // outer block iterations executed
  int grad_evals = 0;        // probe-point gradient evaluations issued
  double algebra_seconds = 0.0;  // wall time inside the block algebra kernels
  double algebra_flops = 0.0;    // ≈ flops issued to those kernels
};

struct BlockCgResult {
  MultiVector x;                      // one solution column per RHS column
  std::vector<double> residual_norm;  // absolute ‖r_j‖ at exit
  std::vector<int> iterations;        // block iterations when column j froze
  std::vector<bool> converged;        // per-RHS relative-residual verdict
  BlockCgStats stats;
};

// Damped block-CG solve of (H + λI) X = B for all columns of B at once
// (O'Leary's multi-RHS CG with A-orthogonalised direction blocks). The hot
// loop is k×k Gram GEMMs and params×k block updates — BLAS-3 — instead of
// the single-RHS path's chain of BLAS-1 calls, and every block iteration
// costs one batched HVP for all k directions.
//
// Contracts:
//   * Per-RHS convergence: column j stops updating (is deflated out of the
//     active block) once ‖r_j‖/‖b_j‖ < options.tolerance; its iteration
//     count and residual are reported individually.
//   * k = 1 delegates to ConjugateGradientSolve, so a single-column block
//     solve equals the oracle bit for bit.
//   * Bitwise-duplicate columns are solved once and share the representative
//     solution bits; zero columns return zero with zero iterations.
//   * For a fixed B and backend kind the result is bitwise identical across
//     thread counts and BatchGradFn lane counts (every kernel in the loop is
//     split-invariant; deflation decisions depend only on computed values).
//   * Accuracy is gated on the relative-residual tolerance plus the per-RHS
//     parity tests in tests/influence_engine_test.cc — block solutions agree
//     with the oracle per column to solver tolerance, not bitwise (the
//     Krylov spaces differ).
//   * The direction block is rank-screened: directions whose Cholesky pivot
//     fails in PᵀP (numerically dependent — near-parallel RHS gradients, k
//     exceeding the residuals' remaining spectral dimension) are dropped
//     BEFORE any probe gradients are paid, and directions with a failing
//     pivot in PᵀAP (negative curvature in the damped Hessian, the block
//     analogue of the single-RHS p_ap <= 0 exit) are dropped after; every
//     residual column keeps advancing through the surviving shared
//     directions. Only if NO direction survives are the remaining columns
//     frozen and finished through the single-RHS oracle on their residual
//     equations: deterministic, judged against the original ‖b_j‖, and a
//     column frozen before any block update reproduces the oracle on its
//     original system bitwise.
// `grad_fn` and `batch_grad` must evaluate the same gradient (grad_fn at the
// current parameters, batch_grad at explicit points).
BlockCgResult BlockConjugateGradientSolve(const std::vector<ag::Parameter*>& params,
                                          const GradFn& grad_fn,
                                          const BatchGradFn& batch_grad,
                                          const MultiVector& b,
                                          const CgOptions& options);

}  // namespace ppfr::influence

#endif  // PPFR_INFLUENCE_HVP_H_

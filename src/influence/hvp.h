#ifndef PPFR_INFLUENCE_HVP_H_
#define PPFR_INFLUENCE_HVP_H_

#include <functional>
#include <vector>

#include "autograd/tape.h"

namespace ppfr::influence {

// Computes the flat training-loss gradient ∇θL at the CURRENT parameter
// values (implementations run a forward/backward pass and flatten).
using GradFn = std::function<std::vector<double>()>;

// Hessian-vector product H·v by central finite differences of the gradient:
//   H v ≈ [∇L(θ + r v̂) − ∇L(θ − r v̂)] / (2 r) · ‖v‖,  v̂ = v/‖v‖
// Restores θ afterwards. Zero vector in, zero vector out.
std::vector<double> HessianVectorProduct(const std::vector<ag::Parameter*>& params,
                                         const GradFn& grad_fn,
                                         const std::vector<double>& v,
                                         double step = 1e-4);

struct CgOptions {
  double damping = 0.01;  // solves (H + damping·I) x = b
  int max_iterations = 40;
  double tolerance = 1e-8;  // on the relative residual
  double hvp_step = 1e-4;
};

struct CgResult {
  std::vector<double> x;
  double residual_norm = 0.0;
  int iterations = 0;
};

// Damped conjugate-gradient solve of (H + λI) x = b with implicit H via
// finite-difference HVPs. This is the standard Koh & Liang inverse-HVP
// machinery; damping keeps the system positive definite when the model is
// not at an exact minimum.
CgResult ConjugateGradientSolve(const std::vector<ag::Parameter*>& params,
                                const GradFn& grad_fn, const std::vector<double>& b,
                                const CgOptions& options);

}  // namespace ppfr::influence

#endif  // PPFR_INFLUENCE_HVP_H_

#ifndef PPFR_INFLUENCE_TAPE_POOL_H_
#define PPFR_INFLUENCE_TAPE_POOL_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "autograd/tape.h"
#include "common/thread_pool.h"
#include "la/backend.h"

namespace ppfr::influence {

// Parallel per-seed backward over ONE shared forward tape.
//
// Per-training-node loss gradients are embarrassingly parallel across seeds,
// but the autograd tape's backward state is inherently single-consumer, and
// the process-wide ParallelBackend pool must not be entered concurrently.
// TapePool resolves both without duplicating the forward pass: it builds a
// single forward tape (which stays structurally immutable — seeds are
// injected as sparse gradients on the shared output node, never as tail
// nodes), then hands each worker thread a private ag::GradArena for its
// backward bookkeeping plus a private single-threaded backend of the active
// kind. Each seed runs a reachability-pruned sparse-seeded backward, the
// lane-local leaf gradients are flattened, and only the touched gradient
// rows are re-zeroed.
//
// Determinism: which lane computes a seed never affects the result — every
// lane back-propagates through the same forward values, and every kernel is
// deterministic across thread counts — so the output equals the serial
// single-lane path bit for bit for any lane count and either backend.
class TapePool {
 public:
  // Builds the shared forward pass on `tape` and returns the node the
  // per-seed gradients are injected into (e.g. the log-softmax output).
  using Builder = std::function<ag::Var(ag::Tape&)>;
  // Fills seed k's sparse gradient on the shared output node: parallel
  // arrays of (row, col, value) entries. Called with cleared vectors.
  using SeedFn = std::function<void(int seed, std::vector<int>* rows,
                                    std::vector<int>* cols, std::vector<double>* values)>;

  TapePool(const Builder& builder, std::vector<ag::Parameter*> params, int num_lanes);

  // Flat ∇θ(loss_k) for every seed k in [0, num_seeds).
  std::vector<std::vector<double>> PerSeedGrads(int num_seeds, const SeedFn& seed_fn);

  // Replays the shared forward with the parameters' CURRENT values, reusing
  // the recorded tape storage and the worker pool (no per-node matrix
  // allocations). The values produced are bitwise what a fresh construction
  // would compute — the replay runs on the active backend, like the original
  // forward. Only valid with the same parameter set the pool was built over
  // (leaf identity is CHECKed by the tape).
  void Rewarm();

  int num_lanes() const { return num_lanes_; }

 private:
  void RunLane(int seed_begin, int seed_end, const SeedFn& seed_fn,
               std::vector<std::vector<double>>* grads);

  Builder builder_;  // retained for Rewarm
  std::vector<ag::Parameter*> params_;
  ag::Tape tape_;
  ag::Var output_;
  int num_lanes_ = 1;
  std::unique_ptr<ThreadPool> pool_;  // only when num_lanes > 1
};

// A loss graph recorded once and replayed for every subsequent gradient
// evaluation — the tape arena behind TrainingLossGrad / HessianVectorProduct
// / the CG solve, which previously rebuilt a fresh tape (~2 per CG iteration)
// for every evaluation. Gradients are read from the tape-local leaf buffers,
// so Parameter::grad is never clobbered by an influence solve.
class ReusableLossGraph {
 public:
  // `builder` must produce the same expression structure on every call (the
  // tape CHECKs this); parameter VALUES may change between calls.
  using Builder = std::function<ag::Var(ag::Tape&)>;

  ReusableLossGraph(Builder builder, std::vector<ag::Parameter*> params);

  // Flat ∇θ(loss) at the current parameter values.
  std::vector<double> Grad();

 private:
  Builder builder_;
  std::vector<ag::Parameter*> params_;
  ag::Tape tape_;
  bool recorded_ = false;
};

// One lane of batched gradient evaluation: a private parameter set plus a
// recorded loss graph over it. Factories hand the pool a full clone of the
// model state per lane, so probe-point evaluation never touches the caller's
// parameters; `owner` keeps the cloned model alive for the lane's lifetime.
struct GradLane {
  std::vector<ag::Parameter*> params;
  std::unique_ptr<ReusableLossGraph> graph;
  std::shared_ptr<void> owner;
  // Fused lane width: how many parameter points this lane's graph evaluates
  // per replay. Width w > 1 means every parameter is WIDENED to w column
  // blocks (see nn::WidenModelParams) and the recorded graph is the lane-wide
  // loss graph, whose per-lane arithmetic is bitwise the width-1 graph.
  int width = 1;
};

// Evaluates the loss gradient at many ABSOLUTE parameter points, fanned
// across lanes — the BatchGradFn engine behind the block-CG solver's batched
// finite-difference HVPs. Each point's gradient comes from replaying one
// lane's recorded graph at that point, under a private single-threaded
// backend of the active kind (the shared ParallelBackend pool is never
// entered concurrently). Which lane evaluates a point never affects its
// bits, so results are bitwise identical for any lane count.
class GradLanePool {
 public:
  using LaneFactory = std::function<GradLane()>;
  // Factory for fused lanes: builds a lane whose graph evaluates `width`
  // points per replay (parameters widened to `width` column blocks).
  using WideLaneFactory = std::function<GradLane(int width)>;

  GradLanePool(const LaneFactory& factory, int num_lanes);

  // Fused construction: points are processed in chunks of `width` per
  // replay. The chunk grid is FIXED by width alone — chunk c always covers
  // points [c·width, (c+1)·width) — and thread lanes take contiguous chunk
  // ranges, so results are bitwise invariant to the lane count. A short
  // final chunk is padded by replicating its last point; lanes are
  // arithmetically independent, so pad lanes never touch a real result.
  GradLanePool(const WideLaneFactory& factory, int num_lanes, int width);

  // Flat loss gradient at each point, in point order.
  std::vector<std::vector<double>> GradsAt(
      const std::vector<std::vector<double>>& points);

  int num_lanes() const { return static_cast<int>(lanes_.size()); }
  int width() const { return width_; }

 private:
  void RunLane(int lane, int begin, int end,
               const std::vector<std::vector<double>>& points,
               std::vector<std::vector<double>>* grads);
  // Fused path: [chunk_begin, chunk_end) on the fixed width_-point grid.
  // `kernel_threads` sizes the worker's private backend (threads left over by
  // having fewer chunk workers than cores).
  void RunLaneFused(int lane, int chunk_begin, int chunk_end, int kernel_threads,
                    const std::vector<std::vector<double>>& points,
                    std::vector<std::vector<double>>* grads);

  std::vector<GradLane> lanes_;
  int width_ = 1;
  std::unique_ptr<ThreadPool> pool_;  // only when num_lanes > 1
};

// Cell-scoped cache of warm replay pools. The expensive state behind an
// influence solve — recorded forward tapes, per-lane model clones, worker
// threads — depends only on the cell's (model, graph, training set), yet it
// was previously rebuilt per InfluenceCalculator AND per use-site within a
// calculator. Hoisting ownership here lets every consumer in the same cell
// reuse the warm pools: a TapePool is re-warmed (forward replayed at the
// model's current values, allocation-free) on each reacquisition, and a
// GradLanePool needs no refresh at all (it evaluates ABSOLUTE points, so its
// clones' resident values are irrelevant).
//
// Keys name the model object and pool geometry; the cache must therefore not
// outlive the models/contexts its entries were warmed against — its intended
// lifetime is one cell (see core::ComputeFairnessWeights) or one bench
// scenario.
class ReplayCache {
 public:
  TapePool* GetOrCreateTapePool(
      const std::string& key,
      const std::function<std::unique_ptr<TapePool>()>& make);

  GradLanePool* GetOrCreateGradLanes(
      const std::string& key,
      const std::function<std::unique_ptr<GradLanePool>()>& make);

 private:
  std::map<std::string, std::unique_ptr<TapePool>> tape_pools_;
  std::map<std::string, std::unique_ptr<GradLanePool>> grad_lane_pools_;
};

}  // namespace ppfr::influence

#endif  // PPFR_INFLUENCE_TAPE_POOL_H_

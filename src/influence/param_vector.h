#ifndef PPFR_INFLUENCE_PARAM_VECTOR_H_
#define PPFR_INFLUENCE_PARAM_VECTOR_H_

#include <vector>

#include "autograd/tape.h"

namespace ppfr::influence {

// Utilities for viewing a model's parameter set as one flat vector — the
// coordinate system of the influence-function linear algebra.

// Total number of scalar parameters.
int64_t TotalParamSize(const std::vector<ag::Parameter*>& params);

// Concatenated parameter values.
std::vector<double> FlattenValues(const std::vector<ag::Parameter*>& params);

// Concatenated parameter gradients.
std::vector<double> FlattenGrads(const std::vector<ag::Parameter*>& params);

// Writes a flat vector back into the parameter values.
void SetValues(const std::vector<ag::Parameter*>& params,
               const std::vector<double>& values);

// Basic flat-vector algebra.
double VecDot(const std::vector<double>& a, const std::vector<double>& b);
double VecNorm(const std::vector<double>& a);
// y += alpha * x
void VecAxpy(double alpha, const std::vector<double>& x, std::vector<double>* y);

}  // namespace ppfr::influence

#endif  // PPFR_INFLUENCE_PARAM_VECTOR_H_

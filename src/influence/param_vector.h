#ifndef PPFR_INFLUENCE_PARAM_VECTOR_H_
#define PPFR_INFLUENCE_PARAM_VECTOR_H_

#include <vector>

#include "autograd/tape.h"
#include "la/matrix.h"

namespace ppfr::influence {

// Utilities for viewing a model's parameter set as one flat vector — the
// coordinate system of the influence-function linear algebra.

// Total number of scalar parameters.
int64_t TotalParamSize(const std::vector<ag::Parameter*>& params);

// Concatenated parameter values.
std::vector<double> FlattenValues(const std::vector<ag::Parameter*>& params);

// Concatenated parameter gradients.
std::vector<double> FlattenGrads(const std::vector<ag::Parameter*>& params);

// Writes a flat vector back into the parameter values.
void SetValues(const std::vector<ag::Parameter*>& params,
               const std::vector<double>& values);

// Basic flat-vector algebra.
double VecDot(const std::vector<double>& a, const std::vector<double>& b);
double VecNorm(const std::vector<double>& a);
// y += alpha * x
void VecAxpy(double alpha, const std::vector<double>& x, std::vector<double>* y);
// Fused y += alpha·x returning the updated yᵀy (Backend::VAxpyDot).
double VecAxpyDot(double alpha, const std::vector<double>& x, std::vector<double>* y);
// Fused y = x + beta·y returning the updated yᵀy (Backend::VDotAxpy).
double VecDotAxpy(double beta, const std::vector<double>& x, std::vector<double>* y);

// A block of k parameter-space vectors, stored as a k x dim row-major
// la::Matrix so that block row j IS column j: each column is one contiguous
// dim-length buffer (flat-kernel friendly) and the block algebra below maps
// directly onto the backend GEMM family — the point of the block-CG solver
// is that its hot loop is these GEMMs instead of k separate BLAS-1 chains.
class MultiVector {
 public:
  MultiVector() = default;
  MultiVector(int64_t dim, int k)
      : m_(k, static_cast<int>(dim)) {}

  static MultiVector FromColumns(const std::vector<std::vector<double>>& columns);

  int64_t dim() const { return m_.cols(); }
  int k() const { return m_.rows(); }

  double* col(int j) { return m_.row(j); }
  const double* col(int j) const { return m_.row(j); }
  std::vector<double> Column(int j) const;
  void SetColumn(int j, const std::vector<double>& values);

  // Keeps only the listed columns, in order (deflation compaction). Per-entry
  // results of every kernel depend only on the operand columns themselves, so
  // compaction never perturbs the surviving columns' bits.
  MultiVector SelectColumns(const std::vector<int>& keep) const;

  la::Matrix& mat() { return m_; }
  const la::Matrix& mat() const { return m_; }

 private:
  la::Matrix m_;
};

// Block Gram matrix G(i, j) = a_iᵀ b_j — a (a.k x b.k) GEMM-T through the
// active backend (the BLAS-3 replacement for k² separate VDots).
la::Matrix BlockGram(const MultiVector& a, const MultiVector& b);

// Squared column norms (the Gram diagonal, without forming the full Gram).
std::vector<double> ColumnNormsSq(const MultiVector& a);

// y_j += sign · Σ_i coeff(i, j) · x_i for every column j — the block-CG
// X += P·α update, computed as one coeffᵀ·X GEMM plus one flat axpy.
// coeff is (x.k rows, y->k cols).
void BlockAccumulate(const la::Matrix& coeff, const MultiVector& x, double sign,
                     MultiVector* y);

// Fused residual step: y_j -= Σ_i coeff(i, j) · x_i, returning each updated
// column's squared norm (the block R -= AP·α update + convergence check in
// one pass over y, via Backend::VAxpyDot).
std::vector<double> BlockAccumulateNormsSq(const la::Matrix& coeff,
                                           const MultiVector& x, MultiVector* y);

// Fused direction step: p_j = r_j + Σ_i coeff(i, j) · p_i (in place; p ends
// up with r.k columns — coeff may be rectangular, (p.k rows, r.k cols), when
// dependent directions were screened out of p), returning each updated
// column's squared norm via Backend::VDotAxpy — the norms feed the batched
// finite-difference HVP's per-column step sizes without a second pass.
std::vector<double> BlockDirectionUpdate(const la::Matrix& coeff,
                                         const MultiVector& r, MultiVector* p);

}  // namespace ppfr::influence

#endif  // PPFR_INFLUENCE_PARAM_VECTOR_H_

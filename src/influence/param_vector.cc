#include "influence/param_vector.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "la/backend.h"

namespace ppfr::influence {

int64_t TotalParamSize(const std::vector<ag::Parameter*>& params) {
  int64_t total = 0;
  for (const ag::Parameter* p : params) total += p->size();
  return total;
}

std::vector<double> FlattenValues(const std::vector<ag::Parameter*>& params) {
  std::vector<double> out;
  out.reserve(TotalParamSize(params));
  for (const ag::Parameter* p : params) {
    out.insert(out.end(), p->value.data(), p->value.data() + p->size());
  }
  return out;
}

std::vector<double> FlattenGrads(const std::vector<ag::Parameter*>& params) {
  std::vector<double> out;
  out.reserve(TotalParamSize(params));
  for (const ag::Parameter* p : params) {
    out.insert(out.end(), p->grad.data(), p->grad.data() + p->size());
  }
  return out;
}

void SetValues(const std::vector<ag::Parameter*>& params,
               const std::vector<double>& values) {
  PPFR_CHECK_EQ(static_cast<int64_t>(values.size()), TotalParamSize(params));
  int64_t offset = 0;
  for (ag::Parameter* p : params) {
    std::copy(values.begin() + offset, values.begin() + offset + p->size(),
              p->value.data());
    offset += p->size();
  }
}

// Parameter-vector arithmetic dispatches through the active la::Backend so
// the CG solve inside the influence machinery scales with the same kernels
// as the rest of the stack.

double VecDot(const std::vector<double>& a, const std::vector<double>& b) {
  PPFR_CHECK_EQ(a.size(), b.size());
  return la::ActiveBackend().VDot(a.data(), b.data(), static_cast<int64_t>(a.size()));
}

double VecNorm(const std::vector<double>& a) { return std::sqrt(VecDot(a, a)); }

void VecAxpy(double alpha, const std::vector<double>& x, std::vector<double>* y) {
  PPFR_CHECK_EQ(x.size(), y->size());
  la::ActiveBackend().VAxpy(alpha, x.data(), y->data(), static_cast<int64_t>(x.size()));
}

}  // namespace ppfr::influence

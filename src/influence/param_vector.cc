#include "influence/param_vector.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "la/backend.h"

namespace ppfr::influence {

int64_t TotalParamSize(const std::vector<ag::Parameter*>& params) {
  int64_t total = 0;
  for (const ag::Parameter* p : params) total += p->size();
  return total;
}

std::vector<double> FlattenValues(const std::vector<ag::Parameter*>& params) {
  std::vector<double> out;
  out.reserve(TotalParamSize(params));
  for (const ag::Parameter* p : params) {
    out.insert(out.end(), p->value.data(), p->value.data() + p->size());
  }
  return out;
}

std::vector<double> FlattenGrads(const std::vector<ag::Parameter*>& params) {
  std::vector<double> out;
  out.reserve(TotalParamSize(params));
  for (const ag::Parameter* p : params) {
    out.insert(out.end(), p->grad.data(), p->grad.data() + p->size());
  }
  return out;
}

void SetValues(const std::vector<ag::Parameter*>& params,
               const std::vector<double>& values) {
  PPFR_CHECK_EQ(static_cast<int64_t>(values.size()), TotalParamSize(params));
  int64_t offset = 0;
  for (ag::Parameter* p : params) {
    std::copy(values.begin() + offset, values.begin() + offset + p->size(),
              p->value.data());
    offset += p->size();
  }
}

// Parameter-vector arithmetic dispatches through the active la::Backend so
// the CG solve inside the influence machinery scales with the same kernels
// as the rest of the stack.

double VecDot(const std::vector<double>& a, const std::vector<double>& b) {
  PPFR_CHECK_EQ(a.size(), b.size());
  return la::ActiveBackend().VDot(a.data(), b.data(), static_cast<int64_t>(a.size()));
}

double VecNorm(const std::vector<double>& a) { return std::sqrt(VecDot(a, a)); }

void VecAxpy(double alpha, const std::vector<double>& x, std::vector<double>* y) {
  PPFR_CHECK_EQ(x.size(), y->size());
  la::ActiveBackend().VAxpy(alpha, x.data(), y->data(), static_cast<int64_t>(x.size()));
}

double VecAxpyDot(double alpha, const std::vector<double>& x, std::vector<double>* y) {
  PPFR_CHECK_EQ(x.size(), y->size());
  return la::ActiveBackend().VAxpyDot(alpha, x.data(), y->data(),
                                      static_cast<int64_t>(x.size()));
}

double VecDotAxpy(double beta, const std::vector<double>& x, std::vector<double>* y) {
  PPFR_CHECK_EQ(x.size(), y->size());
  return la::ActiveBackend().VDotAxpy(beta, x.data(), y->data(),
                                      static_cast<int64_t>(x.size()));
}

MultiVector MultiVector::FromColumns(const std::vector<std::vector<double>>& columns) {
  if (columns.empty()) return MultiVector();
  MultiVector out(static_cast<int64_t>(columns[0].size()),
                  static_cast<int>(columns.size()));
  for (size_t j = 0; j < columns.size(); ++j) {
    out.SetColumn(static_cast<int>(j), columns[j]);
  }
  return out;
}

std::vector<double> MultiVector::Column(int j) const {
  const double* c = col(j);
  return std::vector<double>(c, c + dim());
}

void MultiVector::SetColumn(int j, const std::vector<double>& values) {
  PPFR_CHECK_EQ(static_cast<int64_t>(values.size()), dim());
  std::copy(values.begin(), values.end(), col(j));
}

MultiVector MultiVector::SelectColumns(const std::vector<int>& keep) const {
  MultiVector out(dim(), static_cast<int>(keep.size()));
  for (size_t j = 0; j < keep.size(); ++j) {
    std::copy(col(keep[j]), col(keep[j]) + dim(), out.col(static_cast<int>(j)));
  }
  return out;
}

la::Matrix BlockGram(const MultiVector& a, const MultiVector& b) {
  PPFR_CHECK_EQ(a.dim(), b.dim());
  la::Matrix out(a.k(), b.k());
  la::ActiveBackend().GemmTransB(a.mat(), b.mat(), &out);
  return out;
}

std::vector<double> ColumnNormsSq(const MultiVector& a) {
  std::vector<double> out(static_cast<size_t>(a.k()), 0.0);
  for (int j = 0; j < a.k(); ++j) {
    out[static_cast<size_t>(j)] = la::ActiveBackend().VDot(a.col(j), a.col(j), a.dim());
  }
  return out;
}

void BlockAccumulate(const la::Matrix& coeff, const MultiVector& x, double sign,
                     MultiVector* y) {
  PPFR_CHECK_EQ(coeff.rows(), x.k());
  PPFR_CHECK_EQ(coeff.cols(), y->k());
  PPFR_CHECK_EQ(x.dim(), y->dim());
  // y += sign · coeffᵀ·X, row-major: one GEMM-T plus one flat axpy over the
  // whole block buffer.
  la::Matrix delta(y->k(), static_cast<int>(y->dim()));
  la::ActiveBackend().GemmTransA(coeff, x.mat(), &delta);
  la::ActiveBackend().VAxpy(sign, delta.data(), y->mat().data(), y->mat().size());
}

std::vector<double> BlockAccumulateNormsSq(const la::Matrix& coeff,
                                           const MultiVector& x, MultiVector* y) {
  PPFR_CHECK_EQ(coeff.rows(), x.k());
  PPFR_CHECK_EQ(coeff.cols(), y->k());
  PPFR_CHECK_EQ(x.dim(), y->dim());
  la::Matrix delta(y->k(), static_cast<int>(y->dim()));
  la::ActiveBackend().GemmTransA(coeff, x.mat(), &delta);
  std::vector<double> norms_sq(static_cast<size_t>(y->k()), 0.0);
  for (int j = 0; j < y->k(); ++j) {
    norms_sq[static_cast<size_t>(j)] =
        la::ActiveBackend().VAxpyDot(-1.0, delta.row(j), y->col(j), y->dim());
  }
  return norms_sq;
}

std::vector<double> BlockDirectionUpdate(const la::Matrix& coeff,
                                         const MultiVector& r, MultiVector* p) {
  PPFR_CHECK_EQ(coeff.rows(), p->k());
  PPFR_CHECK_EQ(coeff.cols(), r.k());
  PPFR_CHECK_EQ(r.dim(), p->dim());
  la::Matrix updated(r.k(), static_cast<int>(p->dim()));
  la::ActiveBackend().GemmTransA(coeff, p->mat(), &updated);
  std::vector<double> norms_sq(static_cast<size_t>(r.k()), 0.0);
  for (int j = 0; j < r.k(); ++j) {
    norms_sq[static_cast<size_t>(j)] =
        la::ActiveBackend().VDotAxpy(1.0, r.col(j), updated.row(j), r.dim());
  }
  p->mat() = std::move(updated);
  return norms_sq;
}

}  // namespace ppfr::influence

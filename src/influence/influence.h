#ifndef PPFR_INFLUENCE_INFLUENCE_H_
#define PPFR_INFLUENCE_INFLUENCE_H_

#include <functional>
#include <memory>
#include <vector>

#include "influence/hvp.h"
#include "influence/tape_pool.h"
#include "la/csr_matrix.h"
#include "nn/models.h"
#include "nn/trainer.h"
#include "privacy/attack/pair_sampler.h"

namespace ppfr::influence {

// Builds an evaluation function f(θ) as an autograd expression over the
// model's logits (the trailing argument is the logits node).
using FunctionBuilder = std::function<ag::Var(ag::Tape&, ag::Var)>;

struct InfluenceConfig {
  CgOptions cg;

  // Lanes for the pooled per-node backward (TapePool); <= 0 resolves to the
  // active backend's thread count, capped at 8 — so PPFR_LA_THREADS /
  // --la_threads size both the kernel pool and the tape pool.
  int tape_pool_lanes = 0;

  // Runs per-node gradients through the pre-overhaul serial algorithm (one
  // growing tape, a full ZeroAllGrads sweep per node). Kept as the parity
  // oracle and the "before" side of bench_influence_engine; results are
  // bitwise identical to the pooled path.
  bool serial_reference_per_node = false;

  // Records the training-loss gradient graph once and replays it for every
  // CG/HVP gradient evaluation instead of rebuilding a tape each time.
  bool reuse_grad_tape = true;
};

// Per-training-node influence on scalar evaluation functions f of the
// model's predictions:
//   I_f(v) = -∇θ f(θ*)ᵀ H⁻¹ ∇θ L_v(θ*).
// Under the implicit-function-theorem sign (dθ*/dw_v = -H⁻¹∇L_v) this equals
// |Vl|·df/dw_v, the sensitivity of f to UPWEIGHTING node v — and it equals
// the paper's "leave-v-out" influence I_f(w_v = -1) under its Eq. 9
// convention (which omits the IFT minus sign). Both readings agree on every
// use in this library (QCLP coefficients, Pearson correlation study).
//
// One forward pass is reused for all per-node loss gradients via repeated
// seeded backward passes; H⁻¹∇f is a single damped-CG solve per f.
class InfluenceCalculator {
 public:
  InfluenceCalculator(nn::GnnModel* model, const nn::GraphContext& ctx,
                      std::vector<int> train_nodes, const std::vector<int>& labels,
                      const InfluenceConfig& config);

  // I_f(w_v) for every training node v, given an arbitrary scalar function of
  // the logits.
  std::vector<double> InfluenceOnFunction(const FunctionBuilder& build_f);

  // f = InFoRM bias Tr(softmax(logits)ᵀ L_S softmax(logits)).
  std::vector<double> InfluenceOnBias(
      const std::shared_ptr<const la::CsrMatrix>& laplacian);

  // f = the paper's normalised risk surrogate 2‖d̄0−d̄1‖/(var d0 + var d1).
  std::vector<double> InfluenceOnRisk(const privacy::PairSample& pairs);

  // f = the (unweighted) training loss itself — utility influence (Eq. 11).
  std::vector<double> InfluenceOnUtility();

  int num_train_nodes() const { return static_cast<int>(train_nodes_.size()); }

  // Flat ∇θ L_v for every v, computed from shared forward passes — fanned
  // across a TapePool, or serially on one tape in reference mode (see
  // InfluenceConfig). Cached after the first call. Public so the engine
  // bench and the bitwise-parity tests can drive the two modes directly.
  const std::vector<std::vector<double>>& PerNodeLossGrads();

 private:
  // Flat ∇θ of the mean training loss at the current parameters (replayed
  // from a recorded tape unless config_.reuse_grad_tape is off).
  std::vector<double> TrainingLossGrad();
  // Flat ∇θ f for an arbitrary builder.
  std::vector<double> FunctionGrad(const FunctionBuilder& build_f);
  std::vector<std::vector<double>> PerNodeLossGradsPooled();
  std::vector<std::vector<double>> PerNodeLossGradsSerialReference();

  nn::GnnModel* model_;
  const nn::GraphContext& ctx_;
  std::vector<int> train_nodes_;
  std::vector<int> train_labels_;
  InfluenceConfig config_;
  std::vector<ag::Parameter*> params_;
  std::vector<std::vector<double>> per_node_grads_;       // lazily filled cache
  std::unique_ptr<ReusableLossGraph> train_grad_graph_;  // lazily recorded
};

}  // namespace ppfr::influence

#endif  // PPFR_INFLUENCE_INFLUENCE_H_

#ifndef PPFR_INFLUENCE_INFLUENCE_H_
#define PPFR_INFLUENCE_INFLUENCE_H_

#include <functional>
#include <memory>
#include <vector>

#include "influence/hvp.h"
#include "influence/tape_pool.h"
#include "la/csr_matrix.h"
#include "nn/models.h"
#include "nn/trainer.h"
#include "privacy/attack/pair_sampler.h"

namespace ppfr::influence {

// Builds an evaluation function f(θ) as an autograd expression over the
// model's logits (the trailing argument is the logits node).
using FunctionBuilder = std::function<ag::Var(ag::Tape&, ag::Var)>;

struct InfluenceConfig {
  CgOptions cg;

  // Lanes for the pooled per-node backward (TapePool); <= 0 resolves to the
  // active backend's thread count, capped at 8 — so PPFR_LA_THREADS /
  // --la_threads size both the kernel pool and the tape pool.
  int tape_pool_lanes = 0;

  // Runs per-node gradients through the pre-overhaul serial algorithm (one
  // growing tape, a full ZeroAllGrads sweep per node). Kept as the parity
  // oracle and the "before" side of bench_influence_engine; results are
  // bitwise identical to the pooled path.
  bool serial_reference_per_node = false;

  // Records the training-loss gradient graph once and replays it for every
  // CG/HVP gradient evaluation instead of rebuilding a tape each time.
  bool reuse_grad_tape = true;

  // Columns per block in the multi-RHS inverse-HVP solve (InfluenceOnFunctions
  // / InfluenceOnNodeLosses). 0 — the default — resolves at runtime from the
  // PPFR_CG_BLOCK environment variable, else 8; 1 disables blocking, so every
  // RHS runs through the single-RHS bitwise oracle. The resolved value for a
  // fixed RHS set is deterministic: the same block width always produces the
  // same bits regardless of thread or lane counts.
  int cg_block = 0;

  // Fused replay width for batched probe-gradient evaluation (BatchTrainGrad):
  // each tape replay evaluates this many parameter points at once through a
  // lane-widened loss graph, turning the probe sweep's GEMMs into wide BLAS-3
  // passes. 0 — the default — resolves from PPFR_REPLAY_LANES, else 8; 1
  // disables fusion (the pre-fusion one-replay-per-point path). Results are
  // bitwise identical at every width: each fused lane's arithmetic IS the
  // width-1 graph's (see autograd/ops.cc lane ops).
  int replay_lanes = 0;

  // Optional cell-scoped warm-pool cache (non-owning). When set, the
  // calculator's shared-forward TapePool and probe GradLanePool are acquired
  // from — and survive in — this cache instead of being rebuilt per
  // calculator and per use-site. The cache must outlive the calculator and
  // must not outlive the model/context (see ReplayCache).
  ReplayCache* replay_cache = nullptr;
};

// The block width a configured cg_block value resolves to at runtime
// (configured if > 0, else the PPFR_CG_BLOCK environment variable, else 8).
// Cache keys over FR results mix THIS value, not the raw config field, so
// runs under different environments never share an entry.
int ResolveCgBlock(int configured);

// The fused replay width a configured replay_lanes value resolves to at
// runtime (configured if > 0, else the PPFR_REPLAY_LANES environment
// variable, else 8). Like ResolveCgBlock, FR cache keys mix THIS value: the
// fused path is bitwise-identical to serial by design, but keying the
// resolved width keeps any regression attributable instead of silently
// shared across environments.
int ResolveReplayLanes(int configured);

// Aggregate instrumentation over the block solves an InfluenceCalculator has
// issued since construction (or the last Reset) — surfaced into
// BENCH_influence.json's block-sweep rows.
struct BlockSolveStats {
  int solves = 0;            // block solves issued
  int block_iterations = 0;  // outer block iterations, summed over solves
  int grad_evals = 0;        // probe-point gradient evaluations
  int total_rhs = 0;         // RHS columns handled
  int converged_rhs = 0;     // columns meeting the relative-residual tolerance
  double algebra_seconds = 0.0;  // wall time in block GEMM/fused kernels
  double algebra_flops = 0.0;    // ≈ flops issued to those kernels

  void Reset() { *this = BlockSolveStats(); }
};

// Per-training-node influence on scalar evaluation functions f of the
// model's predictions:
//   I_f(v) = -∇θ f(θ*)ᵀ H⁻¹ ∇θ L_v(θ*).
// Under the implicit-function-theorem sign (dθ*/dw_v = -H⁻¹∇L_v) this equals
// |Vl|·df/dw_v, the sensitivity of f to UPWEIGHTING node v — and it equals
// the paper's "leave-v-out" influence I_f(w_v = -1) under its Eq. 9
// convention (which omits the IFT minus sign). Both readings agree on every
// use in this library (QCLP coefficients, Pearson correlation study).
//
// One forward pass is reused for all per-node loss gradients via repeated
// seeded backward passes; H⁻¹∇f is a single damped-CG solve per f.
class InfluenceCalculator {
 public:
  InfluenceCalculator(nn::GnnModel* model, const nn::GraphContext& ctx,
                      std::vector<int> train_nodes, const std::vector<int>& labels,
                      const InfluenceConfig& config);

  // I_f(w_v) for every training node v, given an arbitrary scalar function of
  // the logits. Single-RHS path — the bitwise oracle the block solver is
  // parity-tested against.
  std::vector<double> InfluenceOnFunction(const FunctionBuilder& build_f);

  // Batched influence: out[i][v] = I_{f_i}(w_v). All inverse-HVP solves run
  // through BlockConjugateGradientSolve in blocks of cg_block columns, and
  // the final -SᵀG contraction against the per-node loss gradients is one
  // GEMM-T. Per-column results agree with InfluenceOnFunction to solver
  // tolerance (see the parity tests); with cg_block = 1 they are bitwise
  // identical to it.
  std::vector<std::vector<double>> InfluenceOnFunctions(
      const std::vector<FunctionBuilder>& builders);

  // Influence of every training node on each target node's individual loss:
  // out[t][v] = I_{L_t}(w_v). The target-node gradient RHSs are gathered
  // from one shared forward pass (TapePool) and solved in blocks of
  // cg_block — the per-node influence sweep the paper's correlation study
  // (Table 2) runs, now BLAS-3 end to end.
  std::vector<std::vector<double>> InfluenceOnNodeLosses(
      const std::vector<int>& target_nodes);

  // f = InFoRM bias Tr(softmax(logits)ᵀ L_S softmax(logits)).
  std::vector<double> InfluenceOnBias(
      const std::shared_ptr<const la::CsrMatrix>& laplacian);

  // f = the paper's normalised risk surrogate 2‖d̄0−d̄1‖/(var d0 + var d1).
  std::vector<double> InfluenceOnRisk(const privacy::PairSample& pairs);

  // f = the (unweighted) training loss itself — utility influence (Eq. 11).
  std::vector<double> InfluenceOnUtility();

  // Self-contained builders for the standard evaluation functions, so
  // callers can batch several of them through one InfluenceOnFunctions call
  // (each builder owns copies of what it captures).
  static FunctionBuilder BiasFunction(
      const std::shared_ptr<const la::CsrMatrix>& laplacian);
  static FunctionBuilder RiskFunction(const privacy::PairSample& pairs);
  FunctionBuilder UtilityFunction() const;

  int num_train_nodes() const { return static_cast<int>(train_nodes_.size()); }

  // The block width InfluenceOnFunctions / InfluenceOnNodeLosses will use
  // (config.cg_block, else PPFR_CG_BLOCK, else 8).
  int ResolvedCgBlock() const;

  // The fused replay width BatchTrainGrad will use (config.replay_lanes,
  // else PPFR_REPLAY_LANES, else 8).
  int ResolvedReplayLanes() const;

  // Instrumentation over every block solve issued so far.
  const BlockSolveStats& block_stats() const { return block_stats_; }
  void ResetBlockStats() { block_stats_.Reset(); }

  // The BatchGradFn the block solver consumes: training-loss gradients at
  // explicit parameter points, evaluated on pooled model clones (the real
  // model's parameters are never touched). Public so the engine bench and
  // the lane-invariance tests can drive it directly.
  BatchGradFn BatchTrainGrad();

  // Flat ∇θ L_v for every v, computed from shared forward passes — fanned
  // across a TapePool, or serially on one tape in reference mode (see
  // InfluenceConfig). Cached after the first call. Public so the engine
  // bench and the bitwise-parity tests can drive the two modes directly.
  const std::vector<std::vector<double>>& PerNodeLossGrads();

 private:
  // Flat ∇θ of the mean training loss at the current parameters (replayed
  // from a recorded tape unless config_.reuse_grad_tape is off).
  std::vector<double> TrainingLossGrad();
  // Flat ∇θ f for an arbitrary builder.
  std::vector<double> FunctionGrad(const FunctionBuilder& build_f);
  std::vector<std::vector<double>> PerNodeLossGradsPooled();
  std::vector<std::vector<double>> PerNodeLossGradsSerialReference();
  // Lanes for pooled per-seed backward / batched probe gradients.
  int ResolvedLanes(int num_items) const;
  // The shared-forward TapePool behind the per-node and per-target gradient
  // sweeps — one pool per calculator (previously one per use-site), acquired
  // from config_.replay_cache when a cell-scoped cache is installed.
  TapePool* SharedForwardPool();
  // Solves (H + λI) S = B in blocks of ResolvedCgBlock() columns,
  // accumulating block_stats_; returns S with one column per RHS column.
  MultiVector SolveRhsBlock(const MultiVector& b);
  // influence[i][v] = -s_iᵀ ∇θL_v for every solution column — one GEMM-T
  // against the cached per-node loss gradients.
  std::vector<std::vector<double>> ContractAgainstNodeGrads(const MultiVector& s);

  nn::GnnModel* model_;
  const nn::GraphContext& ctx_;
  std::vector<int> train_nodes_;
  std::vector<int> train_labels_;
  std::vector<int> labels_;  // full label vector (target-node RHS seeds)
  InfluenceConfig config_;
  std::vector<ag::Parameter*> params_;
  std::vector<std::vector<double>> per_node_grads_;       // lazily filled cache
  std::unique_ptr<ReusableLossGraph> train_grad_graph_;  // lazily recorded
  // Replay pools: raw pointers name the live pool (cache-owned when a
  // ReplayCache is installed, else the owned_ member).
  GradLanePool* grad_lane_pool_ = nullptr;               // lazily built
  std::unique_ptr<GradLanePool> owned_grad_lane_pool_;
  TapePool* forward_pool_ = nullptr;                     // lazily built
  std::unique_ptr<TapePool> owned_forward_pool_;
  BlockSolveStats block_stats_;
};

}  // namespace ppfr::influence

#endif  // PPFR_INFLUENCE_INFLUENCE_H_

// Quickstart: train a GCN on a Cora-like graph, measure its accuracy, its
// individual-fairness bias (InFoRM) and its edge-leakage risk under the
// black-box link-stealing attack — the three axes the PPFR library navigates.
//
// Runs through the scenario runner: the Vanilla and PPFR cells share one
// stage cache, so the vanilla model is trained once and PPFR resumes from it.
//
//   ./example_quickstart [--dataset=CoraLike] [--epochs=150]

#include <cstdio>

#include "common/flags.h"
#include "la/backend.h"
#include "runner/runner.h"

int main(int argc, char** argv) {
  ppfr::Flags flags(argc, argv);
  ppfr::la::ConfigureBackendFromFlags(flags);
  const ppfr::data::DatasetId dataset_id =
      ppfr::runner::ParseDatasetOrDie(flags.GetString("dataset", "CoraLike"));

  // 1. Describe the experiment as data: two cells on one dataset/model.
  ppfr::runner::Sweep sweep;
  sweep.name = "quickstart";
  sweep.title = "vanilla vs PPFR on one GCN";
  for (ppfr::core::MethodKind method :
       {ppfr::core::MethodKind::kVanilla, ppfr::core::MethodKind::kPpFr}) {
    ppfr::runner::Scenario cell;
    cell.dataset = dataset_id;
    cell.model = ppfr::nn::ModelKind::kGcn;
    cell.method = method;
    if (flags.Has("epochs")) cell.overrides.epochs = flags.GetInt("epochs", 150);
    sweep.cells.push_back(cell);
  }

  // 2. Run it (one shared stage cache: vanilla trains exactly once).
  ppfr::runner::RunCache cache;
  ppfr::runner::RunnerOptions options;
  options.verbose = false;
  const ppfr::runner::SweepResult result =
      ppfr::runner::RunSweep(sweep, &cache, options);

  const auto env = cache.Env(dataset_id, options.env_seed);
  std::printf("dataset %s: %d nodes, %lld edges, homophily %.2f, %d classes\n",
              env->dataset.data.name.c_str(), env->ctx.num_nodes(),
              static_cast<long long>(env->dataset.data.graph.num_edges()),
              env->dataset.data.graph.EdgeHomophily(env->labels()),
              env->dataset.data.num_classes);

  // 3. Inspect the three trustworthiness axes.
  const ppfr::core::EvalResult& vanilla = result.cells[0].run->eval;
  std::printf("\nvanilla GCN:\n");
  std::printf("  test accuracy      : %.2f%%\n", 100.0 * vanilla.accuracy);
  std::printf("  InFoRM bias        : %.4f   (lower = fairer)\n", vanilla.bias);
  std::printf("  attack mean AUC    : %.4f   (0.5 = private, 1.0 = leaky)\n",
              vanilla.risk_auc);
  std::printf("  Delta-d (Def. 2)   : %.4f\n", vanilla.delta_d);

  // 4. The PPFR pipeline: fairness up, leakage held down.
  const ppfr::core::EvalResult& ppfr_eval = result.cells[1].run->eval;
  const ppfr::core::DeltaMetrics& delta = result.cells[1].delta;
  std::printf("\nPPFR fine-tuned GCN:\n");
  std::printf("  test accuracy      : %.2f%%  (Δacc %+.2f%%)\n",
              100.0 * ppfr_eval.accuracy, 100.0 * delta.d_acc);
  std::printf("  InFoRM bias        : %.4f   (Δbias %+.2f%%)\n", ppfr_eval.bias,
              100.0 * delta.d_bias);
  std::printf("  attack mean AUC    : %.4f   (Δrisk %+.2f%%)\n", ppfr_eval.risk_auc,
              100.0 * delta.d_risk);
  std::printf("  combined Δ (Eq.22) : %+.3f   (positive = fairness & privacy both up)\n",
              delta.combined);
  return 0;
}

// Quickstart: train a GCN on a Cora-like graph, measure its accuracy, its
// individual-fairness bias (InFoRM) and its edge-leakage risk under the
// black-box link-stealing attack — the three axes the PPFR library navigates.
//
//   ./example_quickstart [--dataset=CoraLike] [--epochs=150]

#include <cstdio>

#include "common/flags.h"
#include "la/backend.h"
#include "core/experiment.h"
#include "core/methods.h"
#include "nn/trainer.h"

namespace {

ppfr::data::DatasetId ParseDataset(const std::string& name) {
  for (ppfr::data::DatasetId id :
       {ppfr::data::DatasetId::kCoraLike, ppfr::data::DatasetId::kCiteseerLike,
        ppfr::data::DatasetId::kPubmedLike, ppfr::data::DatasetId::kEnzymesLike,
        ppfr::data::DatasetId::kCreditLike}) {
    if (ppfr::data::DatasetName(id) == name) return id;
  }
  std::fprintf(stderr, "unknown dataset '%s', using CoraLike\n", name.c_str());
  return ppfr::data::DatasetId::kCoraLike;
}

}  // namespace

int main(int argc, char** argv) {
  ppfr::Flags flags(argc, argv);
  ppfr::la::ConfigureBackendFromFlags(flags);
  const ppfr::data::DatasetId dataset_id =
      ParseDataset(flags.GetString("dataset", "CoraLike"));

  // 1. Generate the benchmark graph and its evaluation scaffolding.
  ppfr::core::ExperimentEnv env =
      ppfr::core::MakeEnv(dataset_id, ppfr::core::kDefaultEnvSeed);
  std::printf("dataset %s: %d nodes, %lld edges, homophily %.2f, %d classes\n",
              env.dataset.data.name.c_str(), env.ctx.num_nodes(),
              static_cast<long long>(env.dataset.data.graph.num_edges()),
              env.dataset.data.graph.EdgeHomophily(env.labels()),
              env.dataset.data.num_classes);

  // 2. Train a vanilla GCN.
  ppfr::core::MethodConfig config =
      ppfr::core::DefaultMethodConfig(dataset_id, ppfr::nn::ModelKind::kGcn);
  config.train.epochs = flags.GetInt("epochs", config.train.epochs);
  ppfr::core::MethodRun vanilla = ppfr::core::RunMethod(
      ppfr::core::MethodKind::kVanilla, ppfr::nn::ModelKind::kGcn, env, config);

  // 3. Inspect the three trustworthiness axes.
  std::printf("\nvanilla GCN:\n");
  std::printf("  test accuracy      : %.2f%%\n", 100.0 * vanilla.eval.accuracy);
  std::printf("  InFoRM bias        : %.4f   (lower = fairer)\n", vanilla.eval.bias);
  std::printf("  attack mean AUC    : %.4f   (0.5 = private, 1.0 = leaky)\n",
              vanilla.eval.risk_auc);
  std::printf("  Delta-d (Def. 2)   : %.4f\n", vanilla.eval.delta_d);

  // 4. The PPFR pipeline: fairness up, leakage held down.
  ppfr::core::MethodRun ppfr_run = ppfr::core::RunMethod(
      ppfr::core::MethodKind::kPpFr, ppfr::nn::ModelKind::kGcn, env, config);
  const ppfr::core::DeltaMetrics delta =
      ppfr::core::ComputeDeltas(ppfr_run.eval, vanilla.eval);
  std::printf("\nPPFR fine-tuned GCN:\n");
  std::printf("  test accuracy      : %.2f%%  (Δacc %+.2f%%)\n",
              100.0 * ppfr_run.eval.accuracy, 100.0 * delta.d_acc);
  std::printf("  InFoRM bias        : %.4f   (Δbias %+.2f%%)\n", ppfr_run.eval.bias,
              100.0 * delta.d_bias);
  std::printf("  attack mean AUC    : %.4f   (Δrisk %+.2f%%)\n", ppfr_run.eval.risk_auc,
              100.0 * delta.d_risk);
  std::printf("  combined Δ (Eq.22) : %+.3f   (positive = fairness & privacy both up)\n",
              delta.combined);
  return 0;
}

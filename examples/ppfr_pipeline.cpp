// Step-by-step walkthrough of the PPFR pipeline (§VI of the paper), showing
// every intermediate artifact: vanilla training, per-node influence scores,
// the QCLP reweighting, the heterophilic perturbation, and the fine-tune.
//
//   ./example_ppfr_pipeline [--dataset=CoraLike] [--model=GCN] [--gamma=0.5]

#include <algorithm>
#include <cstdio>

#include "common/flags.h"
#include "la/backend.h"
#include "core/experiment.h"
#include "core/methods.h"
#include "la/stats.h"
#include "runner/scenario.h"

namespace {

void PrintEval(const char* tag, const ppfr::core::EvalResult& eval) {
  std::printf("%-22s acc %.2f%%   bias %.4f   attack AUC %.4f\n", tag,
              100.0 * eval.accuracy, eval.bias, eval.risk_auc);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ppfr;
  Flags flags(argc, argv);
  la::ConfigureBackendFromFlags(flags);
  const data::DatasetId dataset =
      runner::ParseDatasetOrDie(flags.GetString("dataset", "CoraLike"));
  const nn::ModelKind model_kind =
      runner::ParseModelOrDie(flags.GetString("model", "GCN"));

  core::ExperimentEnv env = core::MakeEnv(dataset, core::kDefaultEnvSeed);
  core::MethodConfig cfg = core::DefaultMethodConfig(dataset, model_kind);
  cfg.pp_gamma = flags.GetDouble("gamma", cfg.pp_gamma);

  std::printf("== PPFR pipeline on %s / %s ==\n\n", env.dataset.data.name.c_str(),
              nn::ModelKindName(model_kind).c_str());

  // Phase 1: vanilla training (performance first).
  std::printf("[1] vanilla training (%d epochs)\n", cfg.train.epochs);
  auto model = core::TrainFresh(model_kind, env, env.ctx, cfg, /*lambda=*/0.0);
  const core::EvalResult vanilla_eval = core::EvaluateModel(model.get(), env.Eval());
  PrintEval("    vanilla:", vanilla_eval);

  // Phase 2a: influence functions + QCLP -> fairness-aware weights.
  std::printf("\n[2] fairness-aware reweighting (influence + QCLP)\n");
  const core::FrOutput fr = core::ComputeFr(model.get(), env, cfg);
  const auto [min_it, max_it] = std::minmax_element(fr.w.begin(), fr.w.end());
  int upweighted = 0, downweighted = 0;
  for (double w : fr.w) {
    if (w > 0.05) ++upweighted;
    if (w < -0.05) ++downweighted;
  }
  std::printf("    |Vl| = %zu train nodes, w in [%.2f, %.2f], %d up / %d down\n",
              fr.w.size(), *min_it, *max_it, upweighted, downweighted);
  std::printf("    corr(I_bias, I_util) = %.3f, predicted bias change %.1f\n",
              la::PearsonCorrelation(fr.bias_influence, fr.util_influence),
              fr.objective);

  // Phase 2b: privacy-aware perturbation A' = A + ΔA.
  std::printf("\n[3] privacy-aware perturbation (gamma = %.2f)\n", cfg.pp_gamma);
  const nn::GraphContext pp_ctx =
      core::MakePpContext(env, model.get(), cfg.pp_gamma, cfg.seed ^ 0x99ULL);
  std::printf("    edges %lld -> %lld (added %lld heterophilic edges)\n",
              static_cast<long long>(env.dataset.data.graph.num_edges()),
              static_cast<long long>(pp_ctx.graph.num_edges()),
              static_cast<long long>(pp_ctx.graph.num_edges() -
                                     env.dataset.data.graph.num_edges()));
  std::printf("    homophily (true labels) %.3f -> %.3f\n",
              env.dataset.data.graph.EdgeHomophily(env.labels()),
              pp_ctx.graph.EdgeHomophily(env.labels()));

  // Phase 2c: fine-tune on the perturbed graph with the weighted loss.
  const int finetune_epochs = std::max(
      1, static_cast<int>(cfg.finetune_scale * cfg.train.epochs));
  std::printf("\n[4] fine-tuning (%d epochs, lr %.4g, weighted loss)\n",
              finetune_epochs, cfg.finetune_lr);
  core::Finetune(model.get(), env, pp_ctx, fr.sample_weights, finetune_epochs, cfg);
  const core::EvalResult ppfr_eval = core::EvaluateModel(model.get(), env.Eval());
  PrintEval("    after PPFR:", ppfr_eval);

  const core::DeltaMetrics delta = core::ComputeDeltas(ppfr_eval, vanilla_eval);
  std::printf("\n== result ==\n");
  std::printf("dAcc %+.2f%%   dBias %+.2f%%   dRisk %+.2f%%   Delta (Eq.22) %+.3f\n",
              100.0 * delta.d_acc, 100.0 * delta.d_bias, 100.0 * delta.d_risk,
              delta.combined);
  return 0;
}

// Reproduces the paper's RQ1 finding on one dataset: adding the InFoRM
// fairness regulariser to GNN training lowers the InFoRM bias, costs some
// accuracy (Table III) — and RAISES the link-stealing attack AUC (Fig. 4),
// i.e. individual fairness of nodes trades off against privacy of edges.
//
//   ./example_fairness_privacy_tradeoff [--dataset=CoraLike] [--model=GCN]
//       [--lambda=0.005]

#include <cstdio>

#include "common/flags.h"
#include "la/backend.h"
#include "common/table_printer.h"
#include "core/experiment.h"
#include "core/methods.h"
#include "privacy/distance.h"
#include "runner/scenario.h"

int main(int argc, char** argv) {
  ppfr::Flags flags(argc, argv);
  ppfr::la::ConfigureBackendFromFlags(flags);
  const ppfr::data::DatasetId dataset_id =
      ppfr::runner::ParseDatasetOrDie(flags.GetString("dataset", "CoraLike"));
  const ppfr::nn::ModelKind model_kind =
      ppfr::runner::ParseModelOrDie(flags.GetString("model", "GCN"));

  ppfr::core::ExperimentEnv env =
      ppfr::core::MakeEnv(dataset_id, ppfr::core::kDefaultEnvSeed);
  ppfr::core::MethodConfig config =
      ppfr::core::DefaultMethodConfig(dataset_id, model_kind);
  config.lambda = flags.GetDouble("lambda", config.lambda);

  const ppfr::core::MethodRun vanilla = ppfr::core::RunMethod(
      ppfr::core::MethodKind::kVanilla, model_kind, env, config);
  const ppfr::core::MethodRun reg =
      ppfr::core::RunMethod(ppfr::core::MethodKind::kReg, model_kind, env, config);

  std::printf("RQ1 on %s / %s (lambda = %g)\n\n", env.dataset.data.name.c_str(),
              ppfr::nn::ModelKindName(model_kind).c_str(), config.lambda);

  ppfr::TablePrinter summary({"Metric", "Vanilla", "Reg", "effect"});
  summary.AddRow({"Accuracy (%)", ppfr::TablePrinter::Num(100 * vanilla.eval.accuracy),
                  ppfr::TablePrinter::Num(100 * reg.eval.accuracy),
                  reg.eval.accuracy < vanilla.eval.accuracy ? "accuracy down"
                                                            : "accuracy up"});
  summary.AddRow({"Bias", ppfr::TablePrinter::Num(vanilla.eval.bias, 4),
                  ppfr::TablePrinter::Num(reg.eval.bias, 4),
                  reg.eval.bias < vanilla.eval.bias ? "fairer" : "more biased"});
  summary.AddRow({"Attack AUC", ppfr::TablePrinter::Num(vanilla.eval.risk_auc, 4),
                  ppfr::TablePrinter::Num(reg.eval.risk_auc, 4),
                  reg.eval.risk_auc > vanilla.eval.risk_auc ? "leakier (RQ1!)"
                                                            : "more private"});
  summary.AddRow({"Delta-d", ppfr::TablePrinter::Num(vanilla.eval.delta_d, 4),
                  ppfr::TablePrinter::Num(reg.eval.delta_d, 4),
                  reg.eval.delta_d > vanilla.eval.delta_d ? "more separable"
                                                          : "less separable"});
  summary.Print();

  std::printf("\nPer-distance attack AUC (vanilla -> Reg):\n");
  const auto& kinds = ppfr::privacy::AllDistanceKinds();
  for (size_t i = 0; i < kinds.size(); ++i) {
    std::printf("  %-12s %.4f -> %.4f\n",
                ppfr::privacy::DistanceName(kinds[i]).c_str(),
                vanilla.eval.attack.auc_per_distance[i],
                reg.eval.attack.auc_per_distance[i]);
  }
  return 0;
}

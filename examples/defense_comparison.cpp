// Compares the three structure-perturbation defenses in this library as
// standalone mechanisms: how much does each reduce the link-stealing risk of
// an already-trained GNN when it is fine-tuned on the perturbed graph, and at
// what accuracy cost?
//   - EdgeRand (randomised response, ε-edge-DP)
//   - LapGraph (Laplace mechanism,   ε-edge-DP)
//   - PP       (the paper's heterophilic perturbation, prediction-guided)
//
//   ./example_defense_comparison [--dataset=CoraLike] [--epochs=150]

#include <cstdio>

#include "common/flags.h"
#include "la/backend.h"
#include "common/table_printer.h"
#include "core/experiment.h"
#include "core/methods.h"
#include "privacy/defense/edge_rand.h"
#include "privacy/defense/heterophilic_perturbation.h"
#include "privacy/defense/lap_graph.h"
#include "runner/scenario.h"

int main(int argc, char** argv) {
  using namespace ppfr;
  Flags flags(argc, argv);
  la::ConfigureBackendFromFlags(flags);
  const data::DatasetId dataset_id =
      runner::ParseDatasetOrDie(flags.GetString("dataset", "CoraLike"));
  core::ExperimentEnv env = core::MakeEnv(dataset_id, core::kDefaultEnvSeed);
  core::MethodConfig cfg = core::DefaultMethodConfig(dataset_id, nn::ModelKind::kGcn);
  cfg.train.epochs = flags.GetInt("epochs", cfg.train.epochs);

  auto vanilla = core::TrainFresh(nn::ModelKind::kGcn, env, env.ctx, cfg, 0.0);
  const core::EvalResult base = core::EvaluateModel(vanilla.get(), env.Eval());
  std::printf("vanilla GCN on %s: acc %.2f%%, attack AUC %.4f\n\n",
              env.dataset.data.name.c_str(), 100.0 * base.accuracy, base.risk_auc);

  const la::Matrix probs = vanilla->PredictProbs(env.ctx);
  const std::vector<int> predicted = la::ArgmaxRows(probs);

  struct Variant {
    std::string name;
    graph::Graph perturbed;
  };
  std::vector<Variant> variants;
  for (double eps : {2.0, 4.0, 6.0}) {
    variants.push_back({"EdgeRand eps=" + TablePrinter::Num(eps, 0),
                        privacy::EdgeRand(env.dataset.data.graph, eps, 7)});
    variants.push_back({"LapGraph eps=" + TablePrinter::Num(eps, 0),
                        privacy::LapGraph(env.dataset.data.graph, eps, 7)});
  }
  for (double gamma : {0.25, 0.5, 1.0}) {
    variants.push_back(
        {"PP gamma=" + TablePrinter::Num(gamma, 2),
         privacy::AddHeterophilicEdges(env.dataset.data.graph, predicted, gamma, 7)});
  }

  TablePrinter table({"Defense", "Edges", "Acc%", "dAcc%", "Risk AUC", "dRisk%"});
  table.AddRow({"(none)", std::to_string(env.dataset.data.graph.num_edges()),
                TablePrinter::Num(100.0 * base.accuracy), "-",
                TablePrinter::Num(base.risk_auc, 4), "-"});
  table.AddSeparator();

  const int finetune_epochs =
      std::max(1, static_cast<int>(cfg.finetune_scale * cfg.train.epochs));
  for (const Variant& variant : variants) {
    const nn::GraphContext ctx =
        nn::GraphContext::Build(variant.perturbed, env.dataset.data.features);
    auto clone = vanilla->Clone();
    const std::vector<double> uniform(env.train_nodes().size(), 1.0);
    core::Finetune(clone.get(), env, ctx, uniform, finetune_epochs, cfg);
    const core::EvalResult eval = core::EvaluateModel(clone.get(), env.Eval());
    table.AddRow({variant.name, std::to_string(variant.perturbed.num_edges()),
                  TablePrinter::Num(100.0 * eval.accuracy),
                  TablePrinter::Pct((eval.accuracy - base.accuracy) / base.accuracy),
                  TablePrinter::Num(eval.risk_auc, 4),
                  TablePrinter::Pct((eval.risk_auc - base.risk_auc) / base.risk_auc)});
  }
  table.Print();
  std::printf(
      "\nReading guide: with a short uniform fine-tune all defenses move the\n"
      "risk only slightly — what matters is the exchange rate. PP targets the\n"
      "inter-class prediction gap the attack exploits (Eq. 20) using FAR fewer\n"
      "edges than EdgeRand needs at comparable risk (compare the Edges\n"
      "column), which is why PPFR pairs PP (not DP) with the reweighting.\n"
      "The full-strength comparison, where defenses enter training itself,\n"
      "is bench_table4_ppfr_effectiveness / bench_fig5_accuracy_cost.\n");
  return 0;
}
